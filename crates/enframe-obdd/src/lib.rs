//! # enframe-obdd — OBDD knowledge compilation for event networks
//!
//! The decision-tree engine of `enframe-prob` explores the Shannon tree
//! induced by the input variables (paper Algorithm 1) — exact answers cost
//! time exponential in the variable count, whatever the lineage looks
//! like. This crate implements the *knowledge compilation* route of Koch &
//! Olteanu's "Conditioning Probabilistic Databases": compile each target
//! event **once** into an ordered binary decision diagram, then answer
//! probability and conditioning queries in time **linear in the compiled
//! size**. For the read-once and hierarchical lineage produced by the
//! mutex and conditional correlation schemes the compiled size is
//! polynomial, so exact probabilities become feasible far beyond the
//! decision-tree engine's horizon.
//!
//! * [`Manager`] — the hash-consed node store: open-addressed
//!   per-variable unique subtables (FxHash, load-factor resizing), a
//!   bounded epoch-tagged [`Manager::ite`] computed-table, constant-time
//!   negation via complement edges, **mark-and-sweep garbage
//!   collection** rooted at [`Manager::protect`]-registered handles, and
//!   **dynamic variable reordering** by group sifting — automatic past a
//!   growth threshold ([`ReorderPolicy`]) or on demand
//!   ([`Manager::reorder`]).
//! * [`ObddEngine`] — compiles an [`enframe_network::Network`]'s targets
//!   (propositional structure compositionally; comparison atoms by
//!   Shannon expansion with three-valued pruning), computes exact
//!   probabilities by weighted model counting ([`Wmc`]), and answers
//!   [`ObddEngine::condition`] queries: posteriors `P(target | evidence)`
//!   for arbitrary evidence events.
//! * [`dnnf`] — the second compilation route: targets compiled to
//!   **d-DNNF** with expansion memoised on residual states (a
//!   partial-sum DP over comparison atoms) and decomposable-AND
//!   factoring, breaking the Shannon-expansion exponent on
//!   aggregate-comparison workloads where every atom's support spans
//!   nearly all variables ([`dnnf::DnnfEngine`]).
//!
//! Mutex var-groups — the paper's encoding of a multi-valued "which of
//! these points exists" choice as a Boolean chain `¬x₁ ∧ … ∧ xⱼ` — are
//! respected natively: [`ObddOptions::groups`] keeps each group's
//! variables adjacent in the order (anchored at the group's best-ranked
//! member under the chosen [`VarOrder`] heuristic), which keeps every
//! mutex chain's BDD linear in the group size.
//!
//! ```
//! use enframe_core::{Program, Var, VarTable};
//! use enframe_network::Network;
//! use enframe_obdd::{ObddEngine, ObddOptions};
//!
//! let mut p = Program::new();
//! let x = p.fresh_var();
//! let y = p.fresh_var();
//! let e = p.declare_event("E", Program::or([Program::var(x), Program::var(y)]));
//! p.add_target(e);
//! let net = Network::build(&p.ground().unwrap()).unwrap();
//! let mut engine = ObddEngine::compile(&net, &ObddOptions::default()).unwrap();
//! let vt = VarTable::uniform(2, 0.5);
//! assert!((engine.probabilities(&vt)[0] - 0.75).abs() < 1e-12);
//!
//! // Condition on x being false: P(E | ¬x) = P(y) = 0.5.
//! let ev = engine.evidence(&[(Var(0), false)]);
//! let post = engine.condition(&vt, ev).unwrap();
//! assert!((post.posteriors[0] - 0.5).abs() < 1e-12);
//! ```

mod compile;
pub mod dnnf;
pub mod manager;
mod peval;
mod reorder;
pub mod wmc;

pub use manager::{Bdd, Manager, ManagerStats, ReorderPolicy};
pub use wmc::{Wmc, WmcCache};

use compile::Compiler;
use enframe_core::budget::{Budget, BudgetScope, Exceeded, Resource};
use enframe_core::failpoint::{self, Site};
use enframe_core::fxhash::FxHashMap;
use enframe_core::{CoreError, Var, VarTable};
use enframe_network::Network;
use enframe_prob::order::{static_order, VarOrder};
use enframe_telemetry::{self as telemetry, Counter, Phase};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Errors of the OBDD backend.
#[derive(Debug, Clone)]
pub enum ObddError {
    /// The network contains structure with no OBDD encoding (folded
    /// loops), or a query refers to unknown entities.
    Unsupported(String),
    /// A numeric evaluation failed while expanding a comparison atom.
    Core(CoreError),
    /// Conditioning on evidence of probability zero.
    ZeroEvidence,
    /// A resource budget ran out mid-compilation ([`ObddOptions::budget`]).
    /// All workers of the run report the *same* first verdict; callers
    /// can degrade to the bounds engine under the remaining budget.
    BudgetExceeded {
        /// The limit that was crossed.
        resource: Resource,
        /// Amount spent at detection time (ns for time, counts otherwise).
        spent: u64,
    },
    /// A worker thread panicked; the panic was caught, the sibling
    /// workers were cancelled, and the pool shut down cleanly.
    WorkerPanicked {
        /// Index of the target being compiled when the panic fired.
        target: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A fault-injection site fired (`ENFRAME_FAILPOINTS`); only
    /// reachable with a failpoint armed ([`enframe_core::failpoint`]).
    Injected(&'static str),
}

impl std::fmt::Display for ObddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObddError::Unsupported(what) => write!(f, "unsupported for OBDD compilation: {what}"),
            ObddError::Core(e) => write!(f, "evaluation error during compilation: {e}"),
            ObddError::ZeroEvidence => write!(f, "conditioning on evidence of probability zero"),
            ObddError::BudgetExceeded { resource, spent } => {
                write!(f, "compilation budget exceeded: {resource} (spent {spent})")
            }
            ObddError::WorkerPanicked { target, message } => {
                write!(
                    f,
                    "worker panicked while compiling target {target}: {message}"
                )
            }
            ObddError::Injected(site) => write!(f, "injected fault at failpoint `{site}`"),
        }
    }
}

impl std::error::Error for ObddError {}

impl From<CoreError> for ObddError {
    fn from(e: CoreError) -> Self {
        ObddError::Core(e)
    }
}

impl From<Exceeded> for ObddError {
    fn from(e: Exceeded) -> Self {
        ObddError::BudgetExceeded {
            resource: e.resource,
            spent: e.spent,
        }
    }
}

impl ObddError {
    /// Whether this is the secondary "cancelled because a sibling
    /// failed" error rather than a primary failure. Error selection
    /// prefers primary errors so the first real failure is what callers
    /// see, deterministically across schedules.
    fn is_cancellation(&self) -> bool {
        matches!(
            self,
            ObddError::BudgetExceeded {
                resource: Resource::Cancelled,
                ..
            }
        )
    }
}

/// How long a pool worker blocks on the target queue before re-checking
/// the cancellation flag — bounds the shutdown latency of a cancelled
/// fan-out without busy-waiting.
const RECV_POLL: Duration = Duration::from_millis(20);

/// The injected stall of an armed `recv` failpoint.
const RECV_STALL: Duration = Duration::from_millis(40);

/// Pulls the next work item for a pool worker, polling the cancellation
/// flag between bounded waits. `None` means stop: the queue disconnected
/// (drained, sender dropped up front) or the scope was cancelled.
pub(crate) fn recv_next<T>(rx: &crossbeam::channel::Receiver<T>, scope: &BudgetScope) -> Option<T> {
    let _wait = telemetry::span(Phase::QueueWait);
    telemetry::count(Counter::QueueWait);
    if failpoint::hit(Site::Recv) {
        std::thread::sleep(RECV_STALL);
    }
    loop {
        if scope.is_cancelled() {
            return None;
        }
        match rx.recv_timeout(RECV_POLL) {
            Ok(item) => return Some(item),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return None,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Renders a caught panic payload (as produced by `catch_unwind`).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Picks the error to report from a pool run: the smallest-indexed
/// *primary* failure, falling back to the smallest-indexed cancellation
/// echo — deterministic across worker schedules.
pub(crate) fn first_worker_error<'a, I>(errors: I) -> Option<&'a (usize, ObddError)>
where
    I: Iterator<Item = &'a (usize, ObddError)> + Clone,
{
    errors
        .clone()
        .filter(|(_, e)| !e.is_cancellation())
        .min_by_key(|(i, _)| *i)
        .or_else(|| errors.min_by_key(|(i, _)| *i))
}

/// Options for OBDD compilation.
#[derive(Debug, Clone, Default)]
pub struct ObddOptions {
    /// Variable-order heuristic (shared with the decision-tree engine)
    /// fixing the **initial** order; dynamic reordering refines it.
    pub order: VarOrder,
    /// Variable groups to keep **adjacent** in the order — one group per
    /// mutex set or conditional step, i.e. per encoded multi-valued
    /// variable. Members absent from the network are ignored; a variable
    /// listed in several groups joins the first. Group sifting moves
    /// each group as one block, preserving the adjacency.
    pub groups: Vec<Vec<Var>>,
    /// Maintenance policy: automatic garbage collection and
    /// growth-triggered group sifting (the default), or
    /// [`ReorderPolicy::disabled`] for a fully static manager.
    pub reorder: ReorderPolicy,
    /// Worker threads for parallel target fan-out. `0` (the default)
    /// means *auto*: honour the `ENFRAME_WORKERS` environment variable,
    /// else compile sequentially. With more than one worker, each worker
    /// compiles whole targets into its own manager (maintenance
    /// disabled, shared initial order) and the results are merged into
    /// the main manager by a recursive cross-manager transfer;
    /// probabilities agree with the sequential compile to floating-point
    /// roundoff (the final variable order may differ, since sequential
    /// compilation may auto-reorder mid-compile).
    pub workers: usize,
    /// Resource budget for the compilation. The default is unlimited,
    /// which skips all bookkeeping — budgeted and unbudgeted runs that
    /// stay inside the budget are bitwise-identical. On exhaustion the
    /// compile returns [`ObddError::BudgetExceeded`] instead of hanging
    /// or growing without bound.
    pub budget: Budget,
}

impl ObddOptions {
    /// Default heuristic and maintenance with the given adjacency
    /// groups.
    pub fn with_groups(groups: Vec<Vec<Var>>) -> Self {
        ObddOptions {
            groups,
            ..ObddOptions::default()
        }
    }

    /// Like [`ObddOptions::with_groups`], but with all automatic
    /// maintenance off — the static baseline the benchmarks compare
    /// group sifting against.
    pub fn static_with_groups(groups: Vec<Vec<Var>>) -> Self {
        ObddOptions {
            groups,
            reorder: ReorderPolicy::disabled(),
            ..ObddOptions::default()
        }
    }
}

/// Compilation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObddStats {
    /// Total nodes in the manager after compiling all targets (live
    /// nodes only — compilation garbage has been collected under the
    /// default policy).
    pub nodes: usize,
    /// Decision nodes of the largest single target BDD.
    pub largest_target: usize,
    /// Shannon-expansion branches taken while compiling comparison atoms.
    pub cmp_branches: u64,
    /// `ite` computed-table hits during compilation.
    pub cache_hits: u64,
    /// Manager health counters as of the end of compilation: live/peak
    /// nodes, GC and reorder passes, unique-table load factor.
    pub manager: ManagerStats,
}

/// Posteriors from a conditioning query.
#[derive(Debug, Clone)]
pub struct Conditioned {
    /// The probability of the evidence itself.
    pub evidence_prob: f64,
    /// `P(target | evidence)` per target, in registration order.
    pub posteriors: Vec<f64>,
}

/// A compiled network: one BDD per target over a shared manager.
///
/// Compile once, then query many times — probabilities and posteriors
/// are linear in the compiled size per query.
#[derive(Debug)]
pub struct ObddEngine {
    man: Manager,
    /// Manager variable label → engine variable (the initial
    /// compilation order; labels are stable under reordering).
    order: Vec<Var>,
    /// Variable index → manager variable label.
    level_of: Vec<Option<u32>>,
    targets: Vec<Bdd>,
    names: Vec<String>,
    stats: ObddStats,
    /// Persistent WMC cache, epoch/weight-stamped (see [`WmcCache`]).
    /// Behind a `Mutex` (not a `RefCell`) so the engine is `Sync`: the
    /// serving layer evaluates batches against a shared `Arc<ObddEngine>`
    /// snapshot, and batch members warm one cache instead of one each.
    wmc_cache: Mutex<WmcCache>,
}

impl ObddEngine {
    /// Compiles every registered target of `net` into a BDD. Under the
    /// default [`ReorderPolicy`] the manager garbage-collects and
    /// group-sifts itself whenever compilation growth crosses the policy
    /// triggers; the compiled targets are kept protected for the life of
    /// the engine, so later [`ObddEngine::reorder`]/GC calls are always
    /// safe.
    pub fn compile(net: &Network, opts: &ObddOptions) -> Result<Self, ObddError> {
        let scope = BudgetScope::new(opts.budget);
        let result = Self::compile_scoped(net, opts, &scope);
        telemetry::count_n(Counter::BudgetCheck, scope.checks());
        if scope.is_cancelled() {
            telemetry::count(Counter::Cancellation);
        }
        result
    }

    fn compile_scoped(
        net: &Network,
        opts: &ObddOptions,
        scope: &BudgetScope,
    ) -> Result<Self, ObddError> {
        let workers = enframe_core::workers::resolve(opts.workers, 1);
        if workers > 1 && net.targets.len() > 1 {
            return Self::compile_par(net, opts, workers, scope);
        }
        let order = grouped_order(static_order(net, opts.order), &opts.groups);
        let mut level_of: Vec<Option<u32>> = vec![None; net.n_vars as usize];
        for (l, v) in order.iter().enumerate() {
            level_of[v.index()] = Some(l as u32);
        }
        let mut man = Manager::with_policy(opts.reorder.clone());
        man.declare_vars(order.len() as u32);
        man.set_level_blocks(&level_blocks(&order, &opts.groups));
        let mut compiler = Compiler::new(net, level_of.clone(), scope.clone());
        let mut targets = Vec::with_capacity(net.targets.len());
        for &t in &net.targets {
            let bdd = compiler.compile(&mut man, t)?;
            man.protect(bdd);
            targets.push(bdd);
        }
        let cmp_branches = compiler.cmp_branches;
        compiler.finish(&mut man);
        if opts.reorder.auto {
            // Final sweep: drop the compilation scaffolding so the
            // manager holds exactly the union of the target DAGs.
            man.collect_garbage();
        }
        let stats = ObddStats {
            nodes: man.len(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            cmp_branches,
            cache_hits: man.cache_hits(),
            manager: man.stats(),
        };
        Ok(ObddEngine {
            man,
            order,
            level_of,
            targets,
            names: net.target_names.clone(),
            stats,
            wmc_cache: Mutex::new(WmcCache::new()),
        })
    }

    /// Parallel target fan-out: each worker compiles whole targets into
    /// its own manager over the shared immutable network (same initial
    /// variable order, maintenance disabled so handles stay stable and
    /// per-worker results are order-deterministic), pulling target
    /// indices from a pre-filled bounded queue whose sender is dropped
    /// up front. The per-worker BDDs are then merged into the main
    /// manager by [`import_bdd`], which deduplicates shared structure
    /// via the unique tables.
    fn compile_par(
        net: &Network,
        opts: &ObddOptions,
        workers: usize,
        scope: &BudgetScope,
    ) -> Result<Self, ObddError> {
        struct WorkerOut {
            man: Manager,
            compiled: Vec<(usize, Bdd)>,
            error: Option<(usize, ObddError)>,
            cmp_branches: u64,
            cache_hits: u64,
        }
        let order = grouped_order(static_order(net, opts.order), &opts.groups);
        let mut level_of: Vec<Option<u32>> = vec![None; net.n_vars as usize];
        for (l, v) in order.iter().enumerate() {
            level_of[v.index()] = Some(l as u32);
        }
        let blocks = level_blocks(&order, &opts.groups);
        let workers = workers.min(net.targets.len());
        let (tx, rx) = crossbeam::channel::bounded(net.targets.len());
        for i in 0..net.targets.len() {
            tx.send(i).expect("queue receiver alive");
        }
        drop(tx);
        let outs: Vec<WorkerOut> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let rx = rx.clone();
                    let scope = scope.clone();
                    let (order, blocks, level_of) = (&order, &blocks, &level_of);
                    s.spawn(move || {
                        let _worker = telemetry::worker_span(Phase::Worker, w);
                        // Panic isolation: a panic escaping the closure
                        // would propagate at scope exit and tear down the
                        // whole process tree. Catch it, cancel the
                        // siblings, and surface a structured error with
                        // the target that was being compiled.
                        let current = std::cell::Cell::new(0usize);
                        let body = catch_unwind(AssertUnwindSafe(|| {
                            let mut man = Manager::with_policy(ReorderPolicy::disabled());
                            man.declare_vars(order.len() as u32);
                            man.set_level_blocks(blocks);
                            let mut compiler = Compiler::new(net, level_of.clone(), scope.clone());
                            let mut compiled = Vec::new();
                            let mut error = None;
                            while let Some(i) = recv_next(&rx, &scope) {
                                current.set(i);
                                if failpoint::hit(Site::Spawn) {
                                    panic!("injected worker panic (failpoint `spawn`)");
                                }
                                match compiler.compile(&mut man, net.targets[i]) {
                                    Ok(bdd) => {
                                        man.protect(bdd);
                                        compiled.push((i, bdd));
                                    }
                                    Err(e) => {
                                        // Stop this worker and its
                                        // siblings: the remaining
                                        // targets' results would be
                                        // discarded anyway.
                                        scope.cancel_external();
                                        error = Some((i, e));
                                        break;
                                    }
                                }
                            }
                            let cmp_branches = compiler.cmp_branches;
                            let cache_hits = man.cache_hits();
                            compiler.finish(&mut man);
                            WorkerOut {
                                man,
                                compiled,
                                error,
                                cmp_branches,
                                cache_hits,
                            }
                        }));
                        body.unwrap_or_else(|payload| {
                            scope.cancel_external();
                            telemetry::count(Counter::Cancellation);
                            let target = current.get();
                            WorkerOut {
                                man: Manager::with_policy(ReorderPolicy::disabled()),
                                compiled: Vec::new(),
                                error: Some((
                                    target,
                                    ObddError::WorkerPanicked {
                                        target,
                                        message: panic_message(payload),
                                    },
                                )),
                                cmp_branches: 0,
                                cache_hits: 0,
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("worker panics are caught inside the closure")
                })
                .collect()
        })
        .expect("worker panics are caught inside the closure");

        // Report the first real failure, deterministically across
        // schedules; cancellation echoes from sibling workers lose.
        if let Some((_, e)) = first_worker_error(outs.iter().filter_map(|w| w.error.as_ref())) {
            return Err(e.clone());
        }
        let _merge = telemetry::span(Phase::Merge);
        if failpoint::hit(Site::Merge) {
            return Err(ObddError::Injected("merge"));
        }
        let mut man = Manager::with_policy(opts.reorder.clone());
        man.declare_vars(order.len() as u32);
        man.set_level_blocks(&level_blocks(&order, &opts.groups));
        let mut targets: Vec<Option<Bdd>> = vec![None; net.targets.len()];
        let mut cmp_branches = 0u64;
        let mut cache_hits = 0u64;
        for w in &outs {
            // No maintenance runs while a worker's results transfer in
            // (imports only call `Manager::node`), so the import memo's
            // intermediate handles stay valid; each merged root is
            // protected as soon as it exists.
            let mut memo: FxHashMap<u32, Bdd> = FxHashMap::default();
            for &(i, bdd) in &w.compiled {
                let merged = import_bdd(&w.man, bdd, &mut man, &mut memo);
                man.protect(merged);
                targets[i] = Some(merged);
            }
            cmp_branches += w.cmp_branches;
            cache_hits += w.cache_hits;
        }
        // With no worker error every queued target was compiled by
        // exactly one worker — unless a cancellation (budget verdict on
        // the scope, external request) stopped the pool early.
        let targets: Vec<Bdd> =
            targets
                .into_iter()
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| {
                    ObddError::from(scope.verdict().unwrap_or(Exceeded {
                        resource: Resource::Cancelled,
                        spent: 0,
                    }))
                })?;
        if opts.reorder.auto {
            man.collect_garbage();
            // The merged manager never reordered mid-compile the way a
            // sequential run may have; give the policy one chance to
            // settle the merged diagram before queries start.
            man.maybe_maintain();
        }
        let stats = ObddStats {
            nodes: man.len(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            cmp_branches,
            cache_hits,
            manager: man.stats(),
        };
        Ok(ObddEngine {
            man,
            order,
            level_of,
            targets,
            names: net.target_names.clone(),
            stats,
            wmc_cache: Mutex::new(WmcCache::new()),
        })
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &ObddStats {
        &self.stats
    }

    /// Current manager health counters (live view; [`ObddEngine::stats`]
    /// is the end-of-compilation snapshot).
    pub fn manager_stats(&self) -> ManagerStats {
        self.man.stats()
    }

    /// Runs one group-sifting pass over the manager. The compiled
    /// targets are protected, so this is always safe; any unprotected
    /// evidence BDD held by the caller is invalidated.
    pub fn reorder(&mut self) {
        self.man.reorder();
    }

    /// Collects garbage unreachable from the compiled targets (and any
    /// handle protected via [`ObddEngine::manager_mut`]). Returns the
    /// number of nodes freed.
    pub fn collect_garbage(&mut self) -> usize {
        self.man.collect_garbage()
    }

    /// The shared manager (e.g. to combine target BDDs into richer
    /// evidence).
    pub fn manager_mut(&mut self) -> &mut Manager {
        &mut self.man
    }

    /// The compiled BDD of target `i`.
    pub fn target(&self, i: usize) -> Bdd {
        self.targets[i]
    }

    /// Target names, parallel to the probability vectors.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of compiled targets.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Exact probability of every target — one weighted-model-counting
    /// pass over the union of the target DAGs. The per-node cache
    /// persists across calls (epoch/weight-stamped), so repeated queries
    /// under the same weights are near-free.
    ///
    /// # Panics
    /// Panics if `vt` does not cover the compiled variables.
    pub fn probabilities(&self, vt: &VarTable) -> Vec<f64> {
        let _span = telemetry::span(Phase::Wmc);
        let mut wmc = Wmc::with_cache(
            &self.man,
            self.level_weights(vt),
            std::mem::take(&mut *self.wmc_cache.lock()),
        );
        let probs = self.targets.iter().map(|&t| wmc.probability(t)).collect();
        *self.wmc_cache.lock() = wmc.into_cache();
        probs
    }

    /// Budget-aware variant of [`ObddEngine::probabilities`] — the WMC
    /// entry point of the serving layer. One weighted-model-counting
    /// sweep over all targets against an immutable `&self` snapshot,
    /// checkpointing the scope between targets so an exhausted or
    /// cancelled request stops at the next target boundary with
    /// [`ObddError::BudgetExceeded`] instead of finishing the sweep.
    ///
    /// Because the engine is `Sync`, a batch of queries can share one
    /// `Arc<ObddEngine>` and this one sweep: the per-node cache the
    /// sweep warms is the engine's persistent [`WmcCache`], so follow-up
    /// queries under the same weights are near-free.
    ///
    /// # Panics
    /// Panics if `vt` does not cover the compiled variables.
    pub fn try_probabilities(
        &self,
        vt: &VarTable,
        scope: &BudgetScope,
    ) -> Result<Vec<f64>, ObddError> {
        let _span = telemetry::span(Phase::Wmc);
        let mut wmc = Wmc::with_cache(
            &self.man,
            self.level_weights(vt),
            std::mem::take(&mut *self.wmc_cache.lock()),
        );
        let mut probs = Vec::with_capacity(self.targets.len());
        let mut verdict = None;
        for &t in &self.targets {
            if let Err(e) = scope.checkpoint() {
                verdict = Some(e);
                break;
            }
            probs.push(wmc.probability(t));
        }
        // Put the (partially) warmed cache back even on the error path —
        // a budget verdict must not cost the next query its warm start.
        *self.wmc_cache.lock() = wmc.into_cache();
        match verdict {
            Some(e) => Err(e.into()),
            None => Ok(probs),
        }
    }

    /// The conjunction of the given literals as an evidence BDD.
    /// Variables the compiled targets never mention get fresh bottom
    /// levels, so conditioning on them is a well-defined no-op.
    ///
    /// The handle is **not** GC-protected: it stays valid until the next
    /// maintenance point (any [`ObddEngine::condition`],
    /// [`ObddEngine::collect_garbage`] or [`ObddEngine::reorder`] call).
    /// Build evidence fresh per query, or protect it via
    /// [`ObddEngine::manager_mut`] to keep it across queries.
    pub fn evidence(&mut self, literals: &[(Var, bool)]) -> Bdd {
        let mut acc = Bdd::TRUE;
        for &(v, value) in literals {
            let level = self.ensure_level(v);
            let lit = if value {
                self.man.var(level)
            } else {
                self.man.nvar(level)
            };
            acc = self.man.and(acc, lit);
        }
        acc
    }

    /// Posterior probabilities `P(target | evidence)` for every target,
    /// plus `P(evidence)`. The evidence may be any BDD over this
    /// engine's manager — literal conjunctions from
    /// [`ObddEngine::evidence`], a compiled [`ObddEngine::target`], or
    /// any combination built via [`ObddEngine::manager_mut`].
    ///
    /// # Panics
    /// Panics if `vt` does not cover the compiled variables.
    pub fn condition(&mut self, vt: &VarTable, evidence: Bdd) -> Result<Conditioned, ObddError> {
        // Reject impossible evidence before conjoining it into every
        // target: the joints would grow the manager only to be thrown
        // away.
        let weights = self.level_weights(vt);
        let mut wmc = Wmc::with_cache(
            &self.man,
            weights.clone(),
            std::mem::take(&mut *self.wmc_cache.lock()),
        );
        let evidence_prob = {
            let _span = telemetry::span(Phase::Wmc);
            wmc.probability(evidence)
        };
        *self.wmc_cache.lock() = wmc.into_cache();
        if evidence_prob <= 0.0 {
            return Err(ObddError::ZeroEvidence);
        }
        let joint: Vec<Bdd> = self
            .targets
            .clone()
            .into_iter()
            .map(|t| self.man.and(t, evidence))
            .collect();
        let mut wmc = Wmc::with_cache(
            &self.man,
            weights,
            std::mem::take(&mut *self.wmc_cache.lock()),
        );
        let posteriors = {
            let _span = telemetry::span(Phase::Wmc);
            joint
                .into_iter()
                .map(|j| wmc.probability(j) / evidence_prob)
                .collect()
        };
        *self.wmc_cache.lock() = wmc.into_cache();
        // Maintenance point: the joints (and the caller's evidence) are
        // garbage now, the targets are protected — repeated conditioning
        // on one engine stays bounded instead of growing monotonically.
        self.man.maybe_maintain();
        Ok(Conditioned {
            evidence_prob,
            posteriors,
        })
    }

    fn level_weights(&self, vt: &VarTable) -> Vec<f64> {
        assert!(
            self.order.iter().all(|v| v.index() < vt.len()),
            "variable table covers {} variables but the OBDD uses up to x{}",
            vt.len(),
            self.order.iter().map(|v| v.0).max().unwrap_or(0)
        );
        self.order.iter().map(|&v| vt.prob(v)).collect()
    }

    fn ensure_level(&mut self, v: Var) -> u32 {
        if v.index() >= self.level_of.len() {
            self.level_of.resize(v.index() + 1, None);
        }
        match self.level_of[v.index()] {
            Some(l) => l,
            None => {
                let l = self.order.len() as u32;
                self.order.push(v);
                self.level_of[v.index()] = Some(l);
                l
            }
        }
    }

    /// Exports the compiled targets as a self-contained, manager-
    /// independent snapshot: the unique-table contents reachable from
    /// the targets in children-first order, with node references
    /// restated against the snapshot's own dense index space and
    /// variables restated by *level* (the export-time order), so the
    /// snapshot is insensitive to handle numbering, free slots, and the
    /// label↔level permutation history of this manager.
    pub fn export(&self) -> ObddSnapshot {
        let level_vars: Vec<Var> = (0..self.man.n_vars())
            .map(|l| self.order[self.man.var_at_level(l as u32) as usize])
            .collect();
        let mut index_of: FxHashMap<u32, u32> = FxHashMap::default();
        let mut nodes: Vec<SnapshotNode> = Vec::new();
        // Iterative post-order DFS over the union of the target DAGs,
        // dedup'd on the complement-stripped node index.
        let mut stack: Vec<(Bdd, bool)> = self
            .targets
            .iter()
            .map(|&t| (if t.is_complement() { !t } else { t }, false))
            .collect();
        while let Some((f, expanded)) = stack.pop() {
            if f.is_const() || index_of.contains_key(&f.index()) {
                continue;
            }
            let (_, _, hi, lo) = self.man.node_of(f);
            if expanded {
                let snap_ref = |e: Bdd| {
                    let base = if e.is_complement() { !e } else { e };
                    let idx = if base.is_const() {
                        0
                    } else {
                        index_of[&base.index()]
                    };
                    idx << 1 | e.is_complement() as u32
                };
                let node = SnapshotNode {
                    level: self.man.level(f),
                    hi: snap_ref(hi),
                    lo: snap_ref(lo),
                };
                nodes.push(node);
                index_of.insert(f.index(), nodes.len() as u32);
            } else {
                stack.push((f, true));
                for e in [hi, lo] {
                    let base = if e.is_complement() { !e } else { e };
                    stack.push((base, false));
                }
            }
        }
        let snap_ref = |t: Bdd| {
            let base = if t.is_complement() { !t } else { t };
            let idx = if base.is_const() {
                0
            } else {
                index_of[&base.index()]
            };
            idx << 1 | t.is_complement() as u32
        };
        ObddSnapshot {
            level_vars,
            blocks: self.man.blocks.clone(),
            nodes,
            targets: self.targets.iter().map(|&t| snap_ref(t)).collect(),
            names: self.names.clone(),
        }
    }

    /// Rebuilds an engine from an untrusted snapshot, re-validating the
    /// structural invariants the manager normally guarantees by
    /// construction — ordering (every child sits on a strictly deeper
    /// level), canonicity (no duplicate `(level, hi, lo)` triple,
    /// `hi != lo`), and complement-edge normalisation (no stored
    /// then-edge carries the complement bit) — so a corrupted snapshot
    /// is rejected with a description instead of producing a
    /// non-canonical diagram and silently wrong counts.
    pub fn import(snap: &ObddSnapshot) -> Result<ObddEngine, String> {
        let n_levels = snap.level_vars.len() as u32;
        if snap.blocks.contains(&0)
            || snap.blocks.iter().map(|&s| s as u64).sum::<u64>() != n_levels as u64
        {
            return Err("blocks do not partition the levels".into());
        }
        if snap.names.len() != snap.targets.len() {
            return Err(format!(
                "{} target names for {} targets",
                snap.names.len(),
                snap.targets.len()
            ));
        }
        let mut level_of: Vec<Option<u32>> = Vec::new();
        for (l, v) in snap.level_vars.iter().enumerate() {
            if v.index() >= level_of.len() {
                level_of.resize(v.index() + 1, None);
            }
            if level_of[v.index()].replace(l as u32).is_some() {
                return Err(format!("variable x{} appears on two levels", v.0));
            }
        }
        let mut man = Manager::with_policy(ReorderPolicy::default());
        man.declare_vars(n_levels);
        man.set_level_blocks(&snap.blocks);
        // Replay children-first. `built[i]`/`level[i]` use snapshot ref
        // indexing: slot 0 is the terminal, node `i` sits at `i + 1`.
        let mut built: Vec<Bdd> = vec![Bdd::TRUE];
        let mut levels: Vec<u32> = vec![u32::MAX];
        let resolve = |built: &[Bdd], r: u32, at: usize| -> Result<(Bdd, u32), String> {
            let idx = (r >> 1) as usize;
            if idx >= built.len() {
                return Err(format!("node {at}: forward reference {idx}"));
            }
            let f = if r & 1 == 1 { !built[idx] } else { built[idx] };
            Ok((f, idx as u32))
        };
        for (i, node) in snap.nodes.iter().enumerate() {
            if node.level >= n_levels {
                return Err(format!("node {i}: level {} out of range", node.level));
            }
            if node.hi & 1 == 1 {
                return Err(format!("node {i}: complemented then-edge"));
            }
            if node.hi == node.lo {
                return Err(format!("node {i}: unreduced node (hi == lo)"));
            }
            let (hi, hi_idx) = resolve(&built, node.hi, i)?;
            let (lo, lo_idx) = resolve(&built, node.lo, i)?;
            for (what, idx) in [("then", hi_idx), ("else", lo_idx)] {
                if levels[idx as usize] <= node.level {
                    return Err(format!("node {i}: {what}-child level not strictly deeper"));
                }
            }
            let before = man.len();
            // Labels equal levels in the freshly declared manager, and
            // the pre-checks above rule out every normalisation path in
            // `Manager::node`, so a replay that does not allocate can
            // only mean a duplicate of an earlier node.
            let f = man.node(node.level, hi, lo);
            if man.len() == before {
                return Err(format!("node {i}: duplicate of an earlier node"));
            }
            built.push(f);
            levels.push(node.level);
        }
        let mut targets = Vec::with_capacity(snap.targets.len());
        for (i, &r) in snap.targets.iter().enumerate() {
            let (t, _) = resolve(&built, r, i).map_err(|_| format!("target {i} out of range"))?;
            man.protect(t);
            targets.push(t);
        }
        let stats = ObddStats {
            nodes: man.len(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            cmp_branches: 0,
            cache_hits: 0,
            manager: man.stats(),
        };
        Ok(ObddEngine {
            man,
            order: snap.level_vars.clone(),
            level_of,
            targets,
            names: snap.names.clone(),
            stats,
            wmc_cache: Mutex::new(WmcCache::new()),
        })
    }
}

/// One node of an [`ObddSnapshot`]: its decision level and packed child
/// references. A reference packs `index << 1 | complement`, where index
/// 0 is the terminal ⊤ (so reference 0 is ⊤ and reference 1 is ⊥) and
/// index `i + 1` is the snapshot's node `i` — the same edge layout as
/// the in-memory [`Bdd`] handle, restated against the snapshot's dense
/// children-first numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotNode {
    /// Decision level at export time (0 is root-most).
    pub level: u32,
    /// Packed then-child reference; never complemented (canonical form).
    pub hi: u32,
    /// Packed else-child reference.
    pub lo: u32,
}

/// A manager-independent image of a compiled [`ObddEngine`]: the
/// variable order by level, the group-sifting blocks, the unique-table
/// contents reachable from the targets (children-first), and the packed
/// target references — everything [`ObddEngine::import`] needs to
/// rebuild an equivalent engine, and the form `enframe-store` persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObddSnapshot {
    /// Level → engine variable (the weights order for WMC).
    pub level_vars: Vec<Var>,
    /// Group-sifting block sizes; partitions `level_vars`.
    pub blocks: Vec<u32>,
    /// Reachable nodes, children before parents.
    pub nodes: Vec<SnapshotNode>,
    /// Packed reference per compiled target (see [`SnapshotNode`]).
    pub targets: Vec<u32>,
    /// Target names, parallel to `targets`.
    pub names: Vec<String>,
}

/// Recursively transfers the BDD `f` from manager `src` into `dst`,
/// rebuilding it bottom-up through `dst`'s unique tables (so structure
/// already present — e.g. from a previously imported worker — is shared,
/// not duplicated). Variable *labels* carry over verbatim: both managers
/// were declared with the same labels, and neither reorders during the
/// transfer. The memo is keyed on `src` node indices with the complement
/// bit stripped, mirroring the complement-edge canonical form.
fn import_bdd(src: &Manager, f: Bdd, dst: &mut Manager, memo: &mut FxHashMap<u32, Bdd>) -> Bdd {
    if f.is_const() {
        // The two constants are represented identically in any manager.
        return f;
    }
    let neg = f.is_complement();
    let base = if neg { !f } else { f };
    let r = match memo.get(&base.index()) {
        Some(&r) => r,
        None => {
            let (_, v, hi, lo) = src.node_of(base);
            let hi = import_bdd(src, hi, dst, memo);
            let lo = import_bdd(src, lo, dst, memo);
            let r = dst.node(v, hi, lo);
            memo.insert(base.index(), r);
            r
        }
    };
    if neg {
        !r
    } else {
        r
    }
}

/// Variable → group index, first group wins — the membership rule shared
/// by [`grouped_order`] and [`level_blocks`].
fn group_of_map(groups: &[Vec<Var>]) -> FxHashMap<Var, usize> {
    let mut group_of: FxHashMap<Var, usize> = FxHashMap::default();
    for (gi, group) in groups.iter().enumerate() {
        for &v in group {
            group_of.entry(v).or_insert(gi);
        }
    }
    group_of
}

/// The group-sifting block sizes for a grouped order: maximal runs of
/// consecutive variables from the same group become one block, everything
/// else is a singleton. The result partitions `order`.
fn level_blocks(order: &[Var], groups: &[Vec<Var>]) -> Vec<u32> {
    let group_of = group_of_map(groups);
    let mut sizes = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        if let Some(g) = group_of.get(&order[i]) {
            while j < order.len() && group_of.get(&order[j]) == Some(g) {
                j += 1;
            }
        }
        sizes.push((j - i) as u32);
        i = j;
    }
    sizes
}

/// Re-ranks a base variable order so that each group's members sit
/// adjacent, anchored at the group's best-ranked member. Variables not in
/// `base` (absent from the network) are dropped from groups; the result
/// is always a permutation of `base`.
fn grouped_order(base: Vec<Var>, groups: &[Vec<Var>]) -> Vec<Var> {
    if groups.is_empty() {
        return base;
    }
    let rank: FxHashMap<Var, usize> = base.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let group_of = group_of_map(groups);
    let mut emitted: Vec<bool> = vec![false; base.len()];
    let mut out = Vec::with_capacity(base.len());
    for &v in &base {
        if emitted[rank[&v]] {
            continue;
        }
        match group_of.get(&v) {
            Some(&gi) => {
                let mut members: Vec<Var> = groups[gi]
                    .iter()
                    .copied()
                    .filter(|m| rank.contains_key(m) && group_of[m] == gi)
                    .collect();
                members.sort_by_key(|m| rank[m]);
                for m in members {
                    if !emitted[rank[&m]] {
                        emitted[rank[&m]] = true;
                        out.push(m);
                    }
                }
            }
            None => {
                emitted[rank[&v]] = true;
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::{space, Program};

    fn engine_for(p: &Program, opts: &ObddOptions) -> (ObddEngine, Vec<f64>, VarTable) {
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::new((0..g.n_vars).map(|i| 0.3 + 0.05 * i as f64).collect());
        let want = space::target_probabilities(&g, &vt);
        let engine = ObddEngine::compile(&net, opts).unwrap();
        (engine, want, vt)
    }

    fn mutex_chain_program(k: usize) -> Program {
        let mut p = Program::new();
        let vars: Vec<Var> = (0..k).map(|_| p.fresh_var()).collect();
        for j in 0..k {
            let mut conj: Vec<_> = vars[..j].iter().map(|&x| Program::nvar(x)).collect();
            conj.push(Program::var(vars[j]));
            let e = p.declare_event(&format!("Phi{j}"), Program::and(conj));
            p.add_target(e);
        }
        p
    }

    #[test]
    fn propositional_probabilities_match_enumeration() {
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let z = p.fresh_var();
        let e1 = p.declare_event(
            "E1",
            Program::or([
                Program::and([Program::var(x), Program::nvar(y)]),
                Program::var(z),
            ]),
        );
        let e2 = p.declare_event("E2", Program::not(Program::eref(e1.clone())));
        p.add_target(e1);
        p.add_target(e2);
        let (engine, want, vt) = engine_for(&p, &ObddOptions::default());
        let got = engine.probabilities(&vt);
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
        assert!((got[0] + got[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn engine_is_sync_and_try_probabilities_matches_probabilities() {
        // The serving layer shares one compiled snapshot across batch
        // members: the engine must be Send + Sync …
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ObddEngine>();

        // … and the budget-aware sweep must agree with the classic one.
        let p = mutex_chain_program(8);
        let (engine, want, vt) = engine_for(&p, &ObddOptions::default());
        let scope = BudgetScope::unlimited();
        let got = engine.try_probabilities(&vt, &scope).unwrap();
        assert_eq!(got.len(), want.len());
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
        assert_eq!(got, engine.probabilities(&vt), "same sweep, same bits");
    }

    #[test]
    fn try_probabilities_stops_at_a_target_boundary_when_cancelled() {
        let p = mutex_chain_program(8);
        let (engine, _, vt) = engine_for(&p, &ObddOptions::default());
        let scope = BudgetScope::unlimited();
        scope.cancel_external();
        match engine.try_probabilities(&vt, &scope) {
            Err(ObddError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, Resource::Cancelled);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The engine stays fully usable after an aborted sweep.
        let probs = engine.probabilities(&vt);
        assert_eq!(probs.len(), 8);
    }

    #[test]
    fn mutex_chain_compiles_linearly() {
        // The mutex encoding Φⱼ = ¬x₁ ∧ … ∧ xⱼ is read-once: each target's
        // BDD is a chain of at most k nodes, and the manager holding all k
        // targets stays quadratic — polynomial where the decision tree
        // over k variables has 2^k branches.
        let k = 40;
        let p = mutex_chain_program(k);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let engine = ObddEngine::compile(&net, &ObddOptions::default()).unwrap();
        assert!(
            engine.stats().largest_target <= k,
            "a mutex chain target must stay linear: {} nodes for k={k}",
            engine.stats().largest_target
        );
        assert!(
            engine.stats().nodes <= k * k,
            "all k mutex targets together must stay quadratic: {} nodes for k={k}",
            engine.stats().nodes
        );
        // Closed form: P(Φⱼ) = Πᵢ<ⱼ (1−pᵢ) · pⱼ.
        let vt = VarTable::new((0..k).map(|i| 0.3 + 0.01 * i as f64).collect());
        let got = engine.probabilities(&vt);
        for j in 0..k {
            let mut want = vt.prob(Var(j as u32));
            for i in 0..j {
                want *= 1.0 - vt.prob(Var(i as u32));
            }
            assert!((got[j] - want).abs() < 1e-12, "target {j}");
        }
    }

    #[test]
    fn comparison_atoms_expand_correctly() {
        use enframe_core::program::{SymCVal, SymEvent, ValSrc};
        use enframe_core::{CmpOp, Value};
        use std::rc::Rc;
        // E = [Σᵢ xᵢ⊗(i+1) ≥ 3] over 3 variables.
        let mut p = Program::new();
        let vars: Vec<_> = (0..3).map(|_| p.fresh_var()).collect();
        let sum = Rc::new(SymCVal::Sum(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| {
                    Rc::new(SymCVal::Cond(
                        Program::var(v),
                        ValSrc::Const(Value::Num(i as f64 + 1.0)),
                    ))
                })
                .collect(),
        ));
        let e = p.declare_event(
            "E",
            Rc::new(SymEvent::Atom(
                CmpOp::Ge,
                sum,
                Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(3.0)))),
            )),
        );
        p.add_target(e);
        let (engine, want, vt) = engine_for(&p, &ObddOptions::default());
        let got = engine.probabilities(&vt);
        assert!((got[0] - want[0]).abs() < 1e-12);
        assert!(engine.stats().cmp_branches > 0);
    }

    #[test]
    fn conditioning_matches_bayes_by_hand() {
        // E = x ∨ y, evidence ¬x: P(E | ¬x) = P(y).
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let e = p.declare_event("E", Program::or([Program::var(x), Program::var(y)]));
        p.add_target(e);
        let (mut engine, _, _) = engine_for(&p, &ObddOptions::default());
        let vt = VarTable::new(vec![0.6, 0.25]);
        let ev = engine.evidence(&[(x, false)]);
        let cond = engine.condition(&vt, ev).unwrap();
        assert!((cond.evidence_prob - 0.4).abs() < 1e-12);
        assert!((cond.posteriors[0] - 0.25).abs() < 1e-12);
        // Conditioning on a target: P(E | E) = 1.
        let t = engine.target(0);
        let cond = engine.condition(&vt, t).unwrap();
        assert!((cond.posteriors[0] - 1.0).abs() < 1e-12);
        // Zero-probability evidence is rejected.
        let bad = engine.evidence(&[(x, true), (x, false)]);
        assert!(matches!(
            engine.condition(&vt, bad),
            Err(ObddError::ZeroEvidence)
        ));
    }

    #[test]
    fn conditioning_on_unmentioned_variable_is_a_noop() {
        let mut p = Program::new();
        let x = p.fresh_var();
        let free = p.fresh_var(); // never used in any event
        let e = p.declare_event("E", Program::var(x));
        p.add_target(e);
        let (mut engine, _, _) = engine_for(&p, &ObddOptions::default());
        let vt = VarTable::new(vec![0.7, 0.5]);
        let prior = engine.probabilities(&vt)[0];
        let ev = engine.evidence(&[(free, true)]);
        let cond = engine.condition(&vt, ev).unwrap();
        assert!((cond.evidence_prob - 0.5).abs() < 1e-12);
        assert!((cond.posteriors[0] - prior).abs() < 1e-12);
    }

    #[test]
    fn grouped_order_keeps_groups_adjacent() {
        let base: Vec<Var> = [4, 0, 2, 1, 3].iter().map(|&i| Var(i)).collect();
        let groups = vec![vec![Var(1), Var(2)], vec![Var(9), Var(3)]];
        let got = grouped_order(base.clone(), &groups);
        // Group {1,2} anchors at rank of Var(2) (earlier), ordered by
        // base rank; Var(9) is absent and dropped; result is a
        // permutation of base.
        assert_eq!(got, vec![Var(4), Var(0), Var(2), Var(1), Var(3)]);
        let mut sorted = got.clone();
        sorted.sort();
        let mut b = base;
        b.sort();
        assert_eq!(sorted, b);
        assert_eq!(grouped_order(vec![Var(0)], &[]), vec![Var(0)]);
    }

    #[test]
    fn every_order_heuristic_gives_the_same_probabilities() {
        let p = mutex_chain_program(6);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::uniform(6, 0.4);
        let want = space::target_probabilities(&g, &vt);
        for order in [
            VarOrder::Sequential,
            VarOrder::StaticOccurrence,
            VarOrder::Dynamic,
        ] {
            let engine = ObddEngine::compile(
                &net,
                &ObddOptions {
                    order,
                    ..ObddOptions::default()
                },
            )
            .unwrap();
            let got = engine.probabilities(&vt);
            for i in 0..want.len() {
                assert!((got[i] - want[i]).abs() < 1e-12, "{order:?} target {i}");
            }
        }
    }

    /// Current thread count of this process (Linux `/proc`); `None`
    /// where unsupported, which skips the leak assertion.
    fn thread_count() -> Option<usize> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    }

    /// ISSUE 8 acceptance: an injected worker panic at `workers = 4`
    /// must surface as a structured [`ObddError::WorkerPanicked`] with
    /// the failing target index — never a propagated panic — and the
    /// pool must be fully joined (no leaked threads), leaving the
    /// process able to compile again.
    #[test]
    fn injected_worker_panic_is_isolated_and_joined() {
        let p = mutex_chain_program(8);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let opts = ObddOptions {
            workers: 4,
            ..ObddOptions::default()
        };
        let before = thread_count();
        {
            let _chaos = failpoint::override_for_test("spawn:every-1");
            for _ in 0..4 {
                match ObddEngine::compile(&net, &opts) {
                    Err(ObddError::WorkerPanicked { target, message }) => {
                        assert!(target < net.targets.len(), "bad target index {target}");
                        assert!(
                            message.contains("injected"),
                            "unexpected payload: {message}"
                        );
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            }
        }
        // Every worker is joined before compile_par returns, so four
        // panicking compiles must not leave stray threads behind (small
        // slack for the test harness's own threads).
        if let (Some(b), Some(a)) = (before, thread_count()) {
            assert!(a <= b + 4, "leaked threads: {b} before, {a} after");
        }
        // The failure is transient: with the fault cleared the same
        // pool compiles cleanly.
        let engine = ObddEngine::compile(&net, &opts).unwrap();
        let vt = VarTable::uniform(8, 0.4);
        let want = space::target_probabilities(&g, &vt);
        let got = engine.probabilities(&vt);
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
    }

    /// An injected allocation failure at a safe point is a structured
    /// error on the sequential path, not a panic.
    #[test]
    fn injected_alloc_failure_is_a_structured_error() {
        let p = mutex_chain_program(6);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let _chaos = failpoint::override_for_test("alloc:every-1");
        match ObddEngine::compile(&net, &ObddOptions::default()) {
            Err(ObddError::Injected(site)) => assert_eq!(site, "alloc"),
            other => panic!("expected Injected(alloc), got {other:?}"),
        }
    }

    /// An injected receive stall only delays the fan-out — the answer
    /// is still exact, and nothing deadlocks.
    #[test]
    fn injected_recv_stall_only_delays() {
        let p = mutex_chain_program(8);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::uniform(8, 0.4);
        let want = space::target_probabilities(&g, &vt);
        let _chaos = failpoint::override_for_test("recv:every-2");
        let engine = ObddEngine::compile(
            &net,
            &ObddOptions {
                workers: 2,
                ..ObddOptions::default()
            },
        )
        .unwrap();
        let got = engine.probabilities(&vt);
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
    }

    /// A node budget too small for the workload trips a structured
    /// [`ObddError::BudgetExceeded`] at a safe point — on both the
    /// sequential and the parallel paths — instead of running to
    /// completion or panicking.
    #[test]
    fn node_budget_exhaustion_is_structured() {
        let p = mutex_chain_program(10);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        for workers in [1usize, 4] {
            let opts = ObddOptions {
                workers,
                budget: Budget {
                    max_nodes: Some(4),
                    ..Budget::unlimited()
                },
                ..ObddOptions::default()
            };
            match ObddEngine::compile(&net, &opts) {
                Err(ObddError::BudgetExceeded { resource, spent }) => {
                    assert_eq!(resource, Resource::Nodes, "workers={workers}");
                    assert!(spent > 4, "workers={workers}: spent {spent}");
                }
                other => panic!("workers={workers}: expected BudgetExceeded, got {other:?}"),
            }
        }
    }
}
