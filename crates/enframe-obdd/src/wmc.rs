//! Weighted model counting over compiled OBDDs.
//!
//! Once an event is compiled, its probability is a **single linear pass**
//! over the DAG (Koch & Olteanu's conditioning route): each decision node
//! contributes `p·P(hi) + (1−p)·P(lo)`, complement edges contribute
//! `1 − P(node)`, and variables absent from the support marginalise out
//! automatically because both branch weights sum to one. The per-node
//! cache is shared across calls, so computing the probabilities of many
//! targets over one manager costs one traversal of their *union* DAG.

use crate::manager::{Bdd, Manager};
use std::collections::HashMap;

/// A weighted model counter over one manager: level weights plus a
/// per-node cache shared across [`Wmc::probability`] calls.
pub struct Wmc<'m> {
    man: &'m Manager,
    /// `P(level = true)` per decision level.
    weights: Vec<f64>,
    /// Probability of each *uncomplemented* node function, by node index.
    cache: HashMap<u32, f64>,
}

impl<'m> Wmc<'m> {
    /// A counter with the given per-level weights (`weights[l]` is the
    /// probability that level `l`'s variable is true).
    pub fn new(man: &'m Manager, weights: Vec<f64>) -> Self {
        Wmc {
            man,
            weights,
            cache: HashMap::new(),
        }
    }

    /// The probability of the function `f` under the level weights.
    pub fn probability(&mut self, f: Bdd) -> f64 {
        let p = self.node_probability(f);
        if f.is_complement() {
            1.0 - p
        } else {
            p
        }
    }

    fn node_probability(&mut self, f: Bdd) -> f64 {
        let (index, level, hi, lo) = self.man.node_of(f);
        if index == 0 {
            return 1.0; // the ⊤ terminal
        }
        if let Some(&p) = self.cache.get(&index) {
            return p;
        }
        let pv = self.weights[level as usize];
        let ph = self.probability(hi);
        let pl = self.probability(lo);
        let p = pv * ph + (1.0 - pv) * pl;
        self.cache.insert(index, p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_probability_is_its_weight() {
        let mut man = Manager::new();
        let x = man.var(0);
        let mut wmc = Wmc::new(&man, vec![0.3]);
        assert!((wmc.probability(x) - 0.3).abs() < 1e-12);
        assert!((wmc.probability(!x) - 0.7).abs() < 1e-12);
        assert_eq!(wmc.probability(Bdd::TRUE), 1.0);
        assert_eq!(wmc.probability(Bdd::FALSE), 0.0);
    }

    #[test]
    fn independent_disjunction() {
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.or(x, y);
        let mut wmc = Wmc::new(&man, vec![0.5, 0.5]);
        assert!((wmc.probability(f) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matches_enumeration_on_random_functions() {
        let n = 5usize;
        let weights = [0.3, 0.5, 0.7, 0.2, 0.9];
        let mut man = Manager::new();
        let vars: Vec<Bdd> = (0..n as u32).map(|l| man.var(l)).collect();
        let mut s = 42u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pool = vars.clone();
        for _ in 0..30 {
            let a = pool[next() as usize % pool.len()];
            let b = pool[next() as usize % pool.len()];
            let f = match next() % 3 {
                0 => man.and(a, b),
                1 => man.or(a, b),
                _ => !a,
            };
            pool.push(f);
        }
        let mut wmc = Wmc::new(&man, weights.to_vec());
        for &f in pool.iter().rev().take(8) {
            let mut want = 0.0;
            for code in 0..1u32 << n {
                if man.eval(f, |l| code >> l & 1 == 1) {
                    let mut p = 1.0;
                    for (l, w) in weights.iter().enumerate() {
                        p *= if code >> l & 1 == 1 { *w } else { 1.0 - w };
                    }
                    want += p;
                }
            }
            assert!(
                (wmc.probability(f) - want).abs() < 1e-12,
                "wmc {} vs enumeration {}",
                wmc.probability(f),
                want
            );
        }
    }

    #[test]
    fn cache_is_shared_across_calls() {
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.and(x, y);
        let z = man.var(2);
        let g = man.or(f, z);
        let mut wmc = Wmc::new(&man, vec![0.5; 3]);
        let _ = wmc.probability(f);
        let before = wmc.cache.len();
        let _ = wmc.probability(g);
        assert!(wmc.cache.len() > before, "g reuses f's cached nodes");
    }
}
