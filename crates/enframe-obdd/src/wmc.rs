//! Weighted model counting over compiled OBDDs.
//!
//! Once an event is compiled, its probability is a **single linear pass**
//! over the DAG (Koch & Olteanu's conditioning route): each decision node
//! contributes `p·P(hi) + (1−p)·P(lo)`, complement edges contribute
//! `1 − P(node)`, and variables absent from the support marginalise out
//! automatically because both branch weights sum to one. Weights are
//! indexed by the manager's **variable labels**, which are stable under
//! dynamic reordering — a reorder changes levels, not labels, so the same
//! weight vector keeps working.
//!
//! The per-node cache is a [`WmcCache`] keyed by node index and stamped
//! with the manager [`epoch`](crate::Manager::epoch) and the weight
//! vector it was computed under: garbage collection and reordering
//! recycle node indices, so a cache from an older epoch (or different
//! weights) is discarded on attach instead of serving stale
//! probabilities. This lets
//! one cache persist across many queries — computing the probabilities
//! of many targets over one manager costs one traversal of their *union*
//! DAG, and the engine reuses the cache across whole
//! `probabilities`/`condition` calls until the manager moves on.

use crate::manager::{Bdd, Manager};
use enframe_core::fxhash::FxHashMap;
use enframe_telemetry::{self as telemetry, Counter};

/// A reusable per-node probability cache, epoch- and weight-stamped so it
/// survives exactly as long as its entries stay valid.
#[derive(Debug, Default, Clone)]
pub struct WmcCache {
    /// Manager epoch the entries were computed in.
    epoch: u64,
    /// The weight vector the entries were computed under (compared by
    /// equality — a fingerprint could collide and silently serve
    /// probabilities for the wrong weights).
    weights: Vec<f64>,
    /// Probability of each *uncomplemented* node function, by node index.
    probs: FxHashMap<u32, f64>,
}

impl WmcCache {
    /// An empty cache.
    pub fn new() -> Self {
        WmcCache::default()
    }

    /// Cached entries (for tests and stats).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    fn validate(&mut self, man: &Manager, weights: &[f64]) {
        if self.epoch != man.epoch() || self.weights != weights {
            if !self.probs.is_empty() {
                telemetry::count(Counter::WmcInvalidation);
            }
            self.probs.clear();
            self.epoch = man.epoch();
            self.weights.clear();
            self.weights.extend_from_slice(weights);
        }
    }
}

/// A weighted model counter over one manager: per-variable weights plus
/// a per-node cache shared across [`Wmc::probability`] calls.
pub struct Wmc<'m> {
    man: &'m Manager,
    /// `P(var = true)` per manager variable label.
    weights: Vec<f64>,
    cache: WmcCache,
}

impl<'m> Wmc<'m> {
    /// A counter with the given per-variable weights (`weights[v]` is
    /// the probability that manager variable `v` is true) and a fresh
    /// cache.
    pub fn new(man: &'m Manager, weights: Vec<f64>) -> Self {
        Wmc::with_cache(man, weights, WmcCache::new())
    }

    /// A counter reusing a persistent cache. Entries from an older
    /// manager epoch or a different weight vector are discarded here —
    /// node indices may have been recycled by GC or reordering since.
    pub fn with_cache(man: &'m Manager, weights: Vec<f64>, mut cache: WmcCache) -> Self {
        cache.validate(man, &weights);
        Wmc {
            man,
            weights,
            cache,
        }
    }

    /// Hands the cache back for reuse in a later query.
    pub fn into_cache(self) -> WmcCache {
        self.cache
    }

    /// The probability of the function `f` under the weights.
    pub fn probability(&mut self, f: Bdd) -> f64 {
        let p = self.node_probability(f);
        if f.is_complement() {
            1.0 - p
        } else {
            p
        }
    }

    fn node_probability(&mut self, f: Bdd) -> f64 {
        let (index, var, hi, lo) = self.man.node_of(f);
        if index == 0 {
            return 1.0; // the ⊤ terminal
        }
        if let Some(&p) = self.cache.probs.get(&index) {
            telemetry::count(Counter::WmcHit);
            return p;
        }
        telemetry::count(Counter::WmcMiss);
        let pv = self.weights[var as usize];
        let ph = self.probability(hi);
        let pl = self.probability(lo);
        let p = pv * ph + (1.0 - pv) * pl;
        self.cache.probs.insert(index, p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_probability_is_its_weight() {
        let mut man = Manager::new();
        let x = man.var(0);
        let mut wmc = Wmc::new(&man, vec![0.3]);
        assert!((wmc.probability(x) - 0.3).abs() < 1e-12);
        assert!((wmc.probability(!x) - 0.7).abs() < 1e-12);
        assert_eq!(wmc.probability(Bdd::TRUE), 1.0);
        assert_eq!(wmc.probability(Bdd::FALSE), 0.0);
    }

    #[test]
    fn independent_disjunction() {
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.or(x, y);
        let mut wmc = Wmc::new(&man, vec![0.5, 0.5]);
        assert!((wmc.probability(f) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matches_enumeration_on_random_functions() {
        let n = 5usize;
        let weights = [0.3, 0.5, 0.7, 0.2, 0.9];
        let mut man = Manager::new();
        let vars: Vec<Bdd> = (0..n as u32).map(|v| man.var(v)).collect();
        let mut s = 42u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pool = vars.clone();
        for _ in 0..30 {
            let a = pool[next() as usize % pool.len()];
            let b = pool[next() as usize % pool.len()];
            let f = match next() % 3 {
                0 => man.and(a, b),
                1 => man.or(a, b),
                _ => !a,
            };
            pool.push(f);
        }
        let mut wmc = Wmc::new(&man, weights.to_vec());
        for &f in pool.iter().rev().take(8) {
            let mut want = 0.0;
            for code in 0..1u32 << n {
                if man.eval(f, |v| code >> v & 1 == 1) {
                    let mut p = 1.0;
                    for (v, w) in weights.iter().enumerate() {
                        p *= if code >> v & 1 == 1 { *w } else { 1.0 - w };
                    }
                    want += p;
                }
            }
            assert!(
                (wmc.probability(f) - want).abs() < 1e-12,
                "wmc {} vs enumeration {}",
                wmc.probability(f),
                want
            );
        }
    }

    #[test]
    fn cache_is_shared_across_calls() {
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.and(x, y);
        let z = man.var(2);
        let g = man.or(f, z);
        let mut wmc = Wmc::new(&man, vec![0.5; 3]);
        let _ = wmc.probability(f);
        let before = wmc.cache.len();
        let _ = wmc.probability(g);
        assert!(wmc.cache.len() > before, "g reuses f's cached nodes");
    }

    #[test]
    fn persistent_cache_survives_matching_epoch_and_invalidates_on_change() {
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.and(x, y);
        let weights = vec![0.4, 0.6];
        let mut wmc = Wmc::with_cache(&man, weights.clone(), WmcCache::new());
        let p = wmc.probability(f);
        let cache = wmc.into_cache();
        assert!(!cache.is_empty());
        // Same epoch, same weights: entries survive the round-trip.
        let wmc = Wmc::with_cache(&man, weights.clone(), cache);
        assert!(!wmc.cache.is_empty());
        let cache = wmc.into_cache();
        // Different weights: discarded.
        let wmc = Wmc::with_cache(&man, vec![0.5, 0.5], cache);
        assert!(wmc.cache.is_empty());
        let cache = wmc.into_cache();
        // Epoch bump (GC): discarded.
        man.protect(f);
        man.collect_garbage();
        let mut wmc = Wmc::with_cache(&man, weights, cache);
        assert!(wmc.cache.is_empty());
        assert!((wmc.probability(f) - p).abs() < 1e-12);
    }

    #[test]
    fn weights_index_variables_not_levels() {
        // After a reorder the level order flips, but weights stay keyed
        // by variable label, so probabilities are unchanged.
        let mut man = Manager::new();
        let x = man.var(0);
        let y = man.var(1);
        let f = man.and(x, y);
        man.protect(f);
        let mut wmc = Wmc::new(&man, vec![0.3, 0.9]);
        let before = wmc.probability(f);
        man.reorder();
        let mut wmc = Wmc::new(&man, vec![0.3, 0.9]);
        assert!((wmc.probability(f) - before).abs() < 1e-12);
    }
}
