//! The hash-consed OBDD manager.
//!
//! Ordered binary decision diagrams in the classic Brace–Rudell–Bryant
//! style: a global *unique table* guarantees that every variable/cofactor
//! triple is stored exactly once, so two functions are equal iff their
//! [`Bdd`] handles are equal; all Boolean connectives reduce to the
//! ternary [`Manager::ite`] operator, memoised in a computed-table; and
//! negation is **constant time** via complement edges — a [`Bdd`] is a
//! node index plus a complement bit, and `¬f` just flips the bit.
//!
//! Canonical form with complement edges requires one invariant: the
//! *then* edge of a stored node is never complemented ([`Manager::node`]
//! re-normalises by complementing the output instead). There is a single
//! terminal, ⊤; ⊥ is its complement.
//!
//! ## Variables, levels, and reordering
//!
//! Nodes are labelled with **variable indices** (plain `u32`s, stable for
//! the life of the manager); the manager separately keeps a mutable
//! permutation mapping each variable to its current **level** (smaller
//! levels sit closer to the root). Dynamic reordering (see
//! [`Manager::reorder`]) swaps adjacent levels *in place* over the unique
//! table — node indices and therefore [`Bdd`] handles keep denoting the
//! same Boolean function across reorders. The mapping between variables
//! and the engine's [`enframe_core::Var`]s lives in [`crate::ObddEngine`],
//! keeping the manager reusable for any variable universe.
//!
//! ## Storage
//!
//! The unique table is split into one **open-addressed subtable per
//! variable** (power-of-two capacity, linear probing, FxHash mixing from
//! [`enframe_core::fxhash`], load-factor-driven resizing) — per-variable
//! tables make the adjacent-level swap of sifting a local operation. The
//! `ite` computed-table is a **bounded, direct-mapped, epoch-tagged
//! cache**: collisions overwrite, so memory never grows past a fixed cap,
//! and invalidation after GC or reordering is a single epoch bump.
//!
//! ## Garbage collection
//!
//! [`Manager::collect_garbage`] is a mark-and-sweep rooted at the
//! [`Manager::protect`]-registered external handles: dead nodes return to
//! a free list, every subtable is rehashed to fit its survivors, and the
//! computed caches are invalidated via [`Manager::epoch`]. Automatic
//! maintenance ([`Manager::maybe_maintain`]) runs GC — and, past a second
//! threshold, sifting — when the live-node count crosses growth triggers
//! derived from [`ReorderPolicy`]. Maintenance only ever happens inside
//! `maybe_maintain`/`collect_garbage`/`reorder`, never inside `ite` or
//! `node`, so handles stay valid throughout any apply operation; callers
//! must protect whatever they hold across an explicit maintenance point.

use enframe_core::fxhash::{mix2, mix3, FxHashMap};
use enframe_telemetry::{self as telemetry, Counter, Phase};

/// A handle to a Boolean function: node index and complement bit packed
/// into one word. Copy-cheap; equality is function equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant-false function (complement of the terminal).
    pub const FALSE: Bdd = Bdd(1);

    fn pack(index: u32, complement: bool) -> Bdd {
        Bdd(index << 1 | complement as u32)
    }

    pub(crate) fn index(self) -> u32 {
        self.0 >> 1
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Whether this edge carries the complement bit.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// `¬f`, in constant time (also available as the `!` operator).
    pub fn complement(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Whether this is one of the two constant functions.
    pub fn is_const(self) -> bool {
        self.index() == 0
    }
}

impl std::ops::Not for Bdd {
    type Output = Bdd;
    fn not(self) -> Bdd {
        self.complement()
    }
}

/// Variable label of the terminal node.
const TERMINAL_VAR: u32 = u32::MAX;
/// Variable label marking a freed node slot (on the free list).
const FREE_VAR: u32 = u32::MAX - 1;
/// Level reported for constants: below every decision level.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// One stored decision node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeData {
    /// Variable label (stable across reordering).
    pub(crate) var: u32,
    /// The *then* cofactor; never complemented (canonical form).
    pub(crate) hi: Bdd,
    /// The *else* cofactor; may be complemented.
    pub(crate) lo: Bdd,
}

/// When and how aggressively the manager maintains itself.
///
/// Automatic maintenance runs at *safe points* ([`Manager::maybe_maintain`],
/// called by the compiler between apply steps and by the engine between
/// queries — never inside an apply operation): once the live-node count
/// crosses the GC trigger, dead nodes are swept; if the survivors still
/// exceed the reorder trigger, group sifting runs. After each pass the
/// triggers are re-derived from the surviving size (2× for GC, 4× for
/// reordering, floored at the policy values), so maintenance cost stays
/// proportional to real growth.
///
/// ```
/// use enframe_obdd::{Manager, ReorderPolicy};
///
/// // An explicitly managed manager: no automatic passes.
/// let mut man = Manager::with_policy(ReorderPolicy::disabled());
/// let x = man.var(0);
/// let y = man.var(1);
/// let f = man.and(x, y);
/// let g = man.or(f, x); // == x ∨ y ... garbage: none yet, g shares f's nodes
///
/// // Protect what must survive, then collect and sift on demand.
/// man.protect(g);
/// man.collect_garbage();
/// man.reorder();
/// assert_eq!(man.stats().reorders, 1);
/// // Handles still denote the same functions after GC + reorder.
/// assert!(man.eval(g, |v| v == 0));
/// man.unprotect(g);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderPolicy {
    /// Whether automatic maintenance (GC + sifting) runs at safe points.
    pub auto: bool,
    /// Initial live-node count that triggers an automatic GC.
    pub gc_threshold: usize,
    /// Initial live-node count (post-GC) that triggers automatic sifting.
    pub reorder_threshold: usize,
    /// Sifting aborts a block's walk once the manager grows past
    /// `max_growth ×` the best size seen for that block.
    pub max_growth: f64,
}

impl Default for ReorderPolicy {
    fn default() -> Self {
        ReorderPolicy {
            auto: true,
            gc_threshold: 256,
            reorder_threshold: 384,
            max_growth: 1.2,
        }
    }
}

impl ReorderPolicy {
    /// No automatic maintenance; [`Manager::collect_garbage`] and
    /// [`Manager::reorder`] still work when called explicitly.
    pub fn disabled() -> Self {
        ReorderPolicy {
            auto: false,
            ..ReorderPolicy::default()
        }
    }
}

/// A live snapshot of the manager's health counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManagerStats {
    /// Decision nodes currently alive (terminal excluded).
    pub live_nodes: usize,
    /// High-water mark of live decision nodes.
    pub peak_nodes: usize,
    /// Mark-and-sweep passes run so far.
    pub gc_runs: u64,
    /// Sifting passes run so far.
    pub reorders: u64,
    /// Live unique-table entries over total allocated capacity.
    pub load_factor: f64,
    /// `ite` computed-table hits so far.
    pub cache_hits: u64,
    /// Estimated peak resident bytes: peak nodes × per-node storage
    /// (node data + stored-edge refcount) plus the current unique-table
    /// slot capacity and `ite` computed-table capacity. Node counts
    /// alone hide memory walls; this makes them visible in the CSV.
    pub peak_bytes: usize,
}

// ---------------------------------------------------------------------
// Unique subtables: open addressing, linear probing, FxHash indexing.
// ---------------------------------------------------------------------

const EMPTY: u32 = u32::MAX;
const TOMB: u32 = u32::MAX - 1;

/// The unique table of one variable: an open-addressed set of node
/// indices keyed by the nodes' `(hi, lo)` edge pair.
#[derive(Debug, Default, Clone)]
pub(crate) struct Subtable {
    /// Power-of-two slot array of node indices ([`EMPTY`]/[`TOMB`]
    /// sentinels); empty until first insert.
    slots: Vec<u32>,
    /// Live entries.
    len: usize,
    /// Tombstones left by removals (cleared on rebuild).
    tombs: usize,
}

impl Subtable {
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot_of(&self, hash: u64, step: usize) -> usize {
        let mask = self.slots.len() - 1;
        ((hash >> (64 - self.slots.len().trailing_zeros())) as usize + step) & mask
    }

    fn find(&self, nodes: &[NodeData], hi: Bdd, lo: Bdd) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let h = mix2(hi.raw(), lo.raw());
        for step in 0..self.slots.len() {
            match self.slots[self.slot_of(h, step)] {
                EMPTY => return None,
                TOMB => {}
                idx => {
                    let n = &nodes[idx as usize];
                    if n.hi == hi && n.lo == lo {
                        return Some(idx);
                    }
                }
            }
        }
        None
    }

    /// Inserts `idx` (key must be absent). Grows/rebuilds beforehand when
    /// occupancy (entries + tombstones) would exceed ¾ of capacity.
    pub(crate) fn insert(&mut self, nodes: &[NodeData], idx: u32) {
        if (self.len + self.tombs + 1) * 4 > self.capacity() * 3 {
            self.rebuild(nodes);
        }
        let n = &nodes[idx as usize];
        let h = mix2(n.hi.raw(), n.lo.raw());
        for step in 0..self.slots.len() {
            let s = self.slot_of(h, step);
            if self.slots[s] == EMPTY || self.slots[s] == TOMB {
                if self.slots[s] == TOMB {
                    self.tombs -= 1;
                }
                self.slots[s] = idx;
                self.len += 1;
                return;
            }
        }
        unreachable!("subtable kept below load factor");
    }

    pub(crate) fn remove(&mut self, nodes: &[NodeData], hi: Bdd, lo: Bdd) {
        let h = mix2(hi.raw(), lo.raw());
        for step in 0..self.slots.len() {
            let s = self.slot_of(h, step);
            match self.slots[s] {
                EMPTY => break,
                TOMB => {}
                idx => {
                    let n = &nodes[idx as usize];
                    if n.hi == hi && n.lo == lo {
                        self.slots[s] = TOMB;
                        self.len -= 1;
                        self.tombs += 1;
                        return;
                    }
                }
            }
        }
        debug_assert!(false, "removing a key absent from its subtable");
    }

    /// Re-slots every live entry into a fresh array sized for the current
    /// population (min 8), clearing tombstones.
    fn rebuild(&mut self, nodes: &[NodeData]) {
        telemetry::count(Counter::UniqueResize);
        let cap = ((self.len + 1) * 2).next_power_of_two().max(8);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.tombs = 0;
        self.len = 0;
        for idx in old {
            if idx != EMPTY && idx != TOMB {
                self.insert(nodes, idx);
            }
        }
    }

    /// Live node indices, in table order.
    pub(crate) fn indices(&self) -> Vec<u32> {
        self.slots
            .iter()
            .copied()
            .filter(|&i| i != EMPTY && i != TOMB)
            .collect()
    }

    fn clear_for(&mut self, expected: usize) {
        let cap = ((expected + 1) * 2).next_power_of_two().max(8);
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        self.len = 0;
        self.tombs = 0;
    }
}

// ---------------------------------------------------------------------
// The ite computed-table: bounded, direct-mapped, epoch-tagged.
// ---------------------------------------------------------------------

const ITE_MIN_BITS: u32 = 10;
const ITE_MAX_BITS: u32 = 18;

#[derive(Debug, Clone, Copy)]
struct IteEntry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
    stamp: u32,
}

const ITE_EMPTY: IteEntry = IteEntry {
    f: 0,
    g: 0,
    h: 0,
    r: 0,
    stamp: 0,
};

#[derive(Debug)]
struct IteCache {
    entries: Vec<IteEntry>,
    /// Valid-entry tag; bumping it invalidates everything at once.
    stamp: u32,
    /// Insertions since the last growth step.
    inserts: u64,
}

impl IteCache {
    fn new() -> Self {
        IteCache {
            entries: vec![ITE_EMPTY; 1 << ITE_MIN_BITS],
            stamp: 1,
            inserts: 0,
        }
    }

    fn slot(&self, f: Bdd, g: Bdd, h: Bdd) -> usize {
        let bits = self.entries.len().trailing_zeros();
        (mix3(f.raw(), g.raw(), h.raw()) >> (64 - bits)) as usize
    }

    fn lookup(&self, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let e = &self.entries[self.slot(f, g, h)];
        (e.stamp == self.stamp && e.f == f.raw() && e.g == g.raw() && e.h == h.raw())
            .then_some(Bdd(e.r))
    }

    fn store(&mut self, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        // Churn-driven growth: once insertions since the last resize
        // exceed twice the capacity the cache is evicting hot entries —
        // double it (re-slotting the survivors: they are hot, just-
        // computed results), up to the hard cap.
        if self.inserts > 2 * self.entries.len() as u64 && self.entries.len() < (1 << ITE_MAX_BITS)
        {
            let cap = self.entries.len() * 2;
            let old = std::mem::replace(&mut self.entries, vec![ITE_EMPTY; cap]);
            for e in old {
                if e.stamp == self.stamp {
                    let s = self.slot(Bdd(e.f), Bdd(e.g), Bdd(e.h));
                    self.entries[s] = e;
                }
            }
            self.inserts = 0;
        }
        let s = self.slot(f, g, h);
        let prev = &self.entries[s];
        if prev.stamp == self.stamp && (prev.f, prev.g, prev.h) != (f.raw(), g.raw(), h.raw()) {
            telemetry::count(Counter::IteEviction);
        }
        self.entries[s] = IteEntry {
            f: f.raw(),
            g: g.raw(),
            h: h.raw(),
            r: r.raw(),
            stamp: self.stamp,
        };
        self.inserts += 1;
    }

    fn invalidate(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Tag wrapped: old entries would look fresh again, so wipe.
            self.entries.fill(ITE_EMPTY);
            self.stamp = 1;
        }
    }
}

// ---------------------------------------------------------------------
// The manager.
// ---------------------------------------------------------------------

/// The shared store of all BDD nodes: per-variable unique subtables, the
/// `ite` computed-table, the root registry for GC, and the level
/// permutation for dynamic reordering.
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<NodeData>,
    /// Stored-edge reference counts: how many *stored* nodes point at
    /// each index. External handles are tracked in `roots` instead.
    pub(crate) refs: Vec<u32>,
    /// Freed node slots available for reuse.
    pub(crate) free: Vec<u32>,
    /// One unique subtable per variable.
    pub(crate) subtables: Vec<Subtable>,
    /// Variable → current level.
    pub(crate) perm: Vec<u32>,
    /// Current level → variable.
    pub(crate) invperm: Vec<u32>,
    /// Group-sifting blocks: sizes of the contiguous level ranges that
    /// move as units (a partition of the level space, in level order).
    pub(crate) blocks: Vec<u32>,
    /// Protected external handles: node index → protection count.
    pub(crate) roots: FxHashMap<u32, u32>,
    cache: IteCache,
    pub(crate) policy: ReorderPolicy,
    gc_trigger: usize,
    reorder_trigger: usize,
    /// Bumped by every GC and reorder; epoch-keyed consumers (WMC caches)
    /// discard state from older epochs.
    epoch: u64,
    pub(crate) live: usize,
    peak: usize,
    gc_runs: u64,
    pub(crate) reorders: u64,
    cache_hits: u64,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

impl Manager {
    /// An empty manager holding only the terminal, with the default
    /// (automatic) [`ReorderPolicy`].
    pub fn new() -> Self {
        Manager::with_policy(ReorderPolicy::default())
    }

    /// An empty manager with the given maintenance policy.
    pub fn with_policy(policy: ReorderPolicy) -> Self {
        let gc_trigger = policy.gc_threshold;
        let reorder_trigger = policy.reorder_threshold;
        Manager {
            nodes: vec![NodeData {
                var: TERMINAL_VAR,
                hi: Bdd::TRUE,
                lo: Bdd::TRUE,
            }],
            refs: vec![0],
            free: Vec::new(),
            subtables: Vec::new(),
            perm: Vec::new(),
            invperm: Vec::new(),
            blocks: Vec::new(),
            roots: FxHashMap::default(),
            cache: IteCache::new(),
            policy,
            gc_trigger,
            reorder_trigger,
            epoch: 0,
            live: 0,
            peak: 0,
            gc_runs: 0,
            reorders: 0,
            cache_hits: 0,
        }
    }

    /// Total stored nodes, terminal included (freed slots excluded).
    pub fn len(&self) -> usize {
        self.live + 1
    }

    /// Whether the manager holds only the terminal.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `ite` computed-table hits so far (for stats).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Current capacity of the `ite` computed-table in entries. Bounded:
    /// it grows at most to [`Manager::ITE_CACHE_MAX_CAPACITY`], and
    /// collisions overwrite rather than chain.
    pub fn ite_cache_capacity(&self) -> usize {
        self.cache.entries.len()
    }

    /// Hard cap on [`Manager::ite_cache_capacity`].
    pub const ITE_CACHE_MAX_CAPACITY: usize = 1 << ITE_MAX_BITS;

    /// The maintenance epoch: bumped by every GC and reorder. Consumers
    /// caching per-node-index state (e.g. WMC caches) must discard it
    /// when the epoch moves on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A snapshot of the manager's health counters.
    pub fn stats(&self) -> ManagerStats {
        let capacity: usize = self.subtables.iter().map(Subtable::capacity).sum();
        let entries: usize = self.subtables.iter().map(Subtable::len).sum();
        // Peak-memory estimate: node storage is sized by the high-water
        // mark (the node array never shrinks), tables by their current
        // capacity (subtables only shrink on GC rebuild).
        let per_node = std::mem::size_of::<NodeData>() + std::mem::size_of::<u32>();
        let peak_bytes = self.peak.max(self.nodes.len()) * per_node
            + capacity * std::mem::size_of::<u32>()
            + self.cache.entries.len() * std::mem::size_of::<IteEntry>();
        ManagerStats {
            live_nodes: self.live,
            peak_nodes: self.peak,
            gc_runs: self.gc_runs,
            reorders: self.reorders,
            load_factor: if capacity == 0 {
                0.0
            } else {
                entries as f64 / capacity as f64
            },
            cache_hits: self.cache_hits,
            peak_bytes,
        }
    }

    /// Number of declared variables.
    pub fn n_vars(&self) -> usize {
        self.perm.len()
    }

    /// The current level of variable `v` (root-most is 0).
    pub fn level_of_var(&self, v: u32) -> u32 {
        self.perm[v as usize]
    }

    /// The variable at level `l` under the current order.
    pub fn var_at_level(&self, l: u32) -> u32 {
        self.invperm[l as usize]
    }

    /// The variable label of `f`'s root ([`u32::MAX`] for constants).
    pub fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.index() as usize].var
    }

    /// The current decision level of `f`'s root ([`u32::MAX`] for
    /// constants). Levels move under reordering; variable labels
    /// ([`Manager::var_of`]) do not.
    pub fn level(&self, f: Bdd) -> u32 {
        let v = self.var_of(f);
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.perm[v as usize]
        }
    }

    fn ensure_var(&mut self, v: u32) {
        while self.perm.len() <= v as usize {
            let l = self.perm.len() as u32;
            self.perm.push(l);
            self.invperm.push(l);
            self.blocks.push(1);
            self.subtables.push(Subtable::default());
        }
    }

    /// Declares the sifting blocks: `sizes` partitions the variables (in
    /// current level order) into contiguous ranges that reordering moves
    /// as units — one block per mutex/conditional var-group, singletons
    /// elsewhere. Variables declared later become singleton blocks.
    ///
    /// # Panics
    /// Panics if the sizes do not sum to the declared variable count.
    pub fn set_level_blocks(&mut self, sizes: &[u32]) {
        assert_eq!(
            sizes.iter().map(|&s| s as usize).sum::<usize>(),
            self.perm.len(),
            "blocks must partition the declared variables"
        );
        assert!(sizes.iter().all(|&s| s > 0), "blocks must be non-empty");
        self.blocks = sizes.to_vec();
    }

    /// Declares variables `0..n` (levels in declaration order) without
    /// creating any nodes — so [`Manager::set_level_blocks`] can run
    /// before the first node exists.
    pub fn declare_vars(&mut self, n: u32) {
        if n > 0 {
            self.ensure_var(n - 1);
        }
    }

    /// The positive literal of variable `v` (declared on first use).
    pub fn var(&mut self, v: u32) -> Bdd {
        self.ensure_var(v);
        self.node(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// The negative literal of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        self.ensure_var(v);
        self.node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The cofactors `(f|v=1, f|v=0)` of `f` with respect to variable
    /// `v`, whose level must not be below `f`'s root level.
    pub fn cofactors(&self, f: Bdd, v: u32) -> (Bdd, Bdd) {
        let n = &self.nodes[f.index() as usize];
        if n.var != v {
            debug_assert!(
                self.level(f) > self.perm[v as usize],
                "cofactor below the root level"
            );
            return (f, f);
        }
        if f.is_complement() {
            (!n.hi, !n.lo)
        } else {
            (n.hi, n.lo)
        }
    }

    /// The unique (reduced) node `v ? hi : lo`.
    ///
    /// # Panics
    /// Panics in debug builds if a child's level is not strictly below
    /// `v`'s (ordering violation).
    pub fn node(&mut self, v: u32, hi: Bdd, lo: Bdd) -> Bdd {
        self.ensure_var(v);
        debug_assert!(
            self.level(hi) > self.perm[v as usize] && self.level(lo) > self.perm[v as usize],
            "child level above parent"
        );
        if hi == lo {
            return hi;
        }
        // Canonical form: the then-edge is never complemented.
        if hi.is_complement() {
            return !self.node_raw(v, !hi, !lo);
        }
        self.node_raw(v, hi, lo)
    }

    pub(crate) fn node_raw(&mut self, v: u32, hi: Bdd, lo: Bdd) -> Bdd {
        telemetry::count(Counter::UniqueProbe);
        if let Some(idx) = self.subtables[v as usize].find(&self.nodes, hi, lo) {
            return Bdd::pack(idx, false);
        }
        telemetry::count(Counter::NodeAlloc);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = NodeData { var: v, hi, lo };
                self.refs[slot as usize] = 0;
                slot
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(NodeData { var: v, hi, lo });
                self.refs.push(0);
                idx
            }
        };
        self.bump_stored_edge(hi);
        self.bump_stored_edge(lo);
        self.subtables[v as usize].insert(&self.nodes, idx);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        Bdd::pack(idx, false)
    }

    /// Bumps the stored-edge reference count of `e` (terminal excluded).
    pub(crate) fn bump_stored_edge(&mut self, e: Bdd) {
        let i = e.index() as usize;
        if i != 0 {
            self.refs[i] += 1;
        }
    }

    /// Drops one stored-edge reference to `e`, freeing its node (and
    /// cascading into its children) when no stored edge and no root
    /// protection keeps it alive. Only reordering calls this — ordinary
    /// apply operations leave garbage to the mark-and-sweep collector.
    pub(crate) fn release_edge(&mut self, e: Bdd) {
        let i = e.index();
        if i == 0 {
            return;
        }
        self.refs[i as usize] -= 1;
        if self.refs[i as usize] == 0 && !self.roots.contains_key(&i) {
            let n = self.nodes[i as usize];
            self.subtables[n.var as usize].remove(&self.nodes, n.hi, n.lo);
            self.nodes[i as usize].var = FREE_VAR;
            self.free.push(i);
            self.live -= 1;
            self.release_edge(n.hi);
            self.release_edge(n.lo);
        }
    }

    // -----------------------------------------------------------------
    // Roots and garbage collection.
    // -----------------------------------------------------------------

    /// Registers `f` as a GC root: the node (and everything it reaches)
    /// survives [`Manager::collect_garbage`] until a matching
    /// [`Manager::unprotect`]. Protection counts nest.
    pub fn protect(&mut self, f: Bdd) {
        let i = f.index();
        if i != 0 {
            *self.roots.entry(i).or_insert(0) += 1;
        }
    }

    /// Drops one protection of `f`.
    pub fn unprotect(&mut self, f: Bdd) {
        let i = f.index();
        if i == 0 {
            return;
        }
        match self.roots.get_mut(&i) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.roots.remove(&i);
            }
            None => debug_assert!(false, "unprotecting an unprotected handle"),
        }
    }

    /// Number of distinct protected nodes (for diagnostics).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Mark-and-sweep over the node store, rooted at the
    /// [`Manager::protect`]-registered handles: unreachable nodes go to
    /// the free list, every unique subtable is rehashed to fit its
    /// survivors, the computed caches are invalidated, and the epoch
    /// advances. Returns the number of nodes freed.
    ///
    /// Any unprotected [`Bdd`] held by a caller dangles afterwards; the
    /// constants [`Bdd::TRUE`]/[`Bdd::FALSE`] are always safe.
    pub fn collect_garbage(&mut self) -> usize {
        let _span = telemetry::span(Phase::Gc);
        // Mark.
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let n = &self.nodes[i as usize];
            debug_assert_ne!(n.var, FREE_VAR, "root reaches a freed node");
            stack.push(n.hi.index());
            stack.push(n.lo.index());
        }
        // Sweep.
        let mut freed = 0usize;
        for i in 1..self.nodes.len() {
            if self.nodes[i].var != FREE_VAR && !marked[i] {
                self.nodes[i].var = FREE_VAR;
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.live -= freed;
        // Rehash every subtable to fit its survivors and rebuild the
        // stored-edge reference counts from scratch.
        let mut per_var = vec![0usize; self.subtables.len()];
        for n in self.nodes.iter().skip(1) {
            if n.var != FREE_VAR {
                per_var[n.var as usize] += 1;
            }
        }
        for (sub, &count) in self.subtables.iter_mut().zip(&per_var) {
            sub.clear_for(count);
        }
        self.refs.iter_mut().for_each(|r| *r = 0);
        for i in 1..self.nodes.len() {
            let n = self.nodes[i];
            if n.var != FREE_VAR {
                self.subtables[n.var as usize].insert(&self.nodes, i as u32);
                self.bump_stored_edge(n.hi);
                self.bump_stored_edge(n.lo);
            }
        }
        self.cache.invalidate();
        self.epoch += 1;
        self.gc_runs += 1;
        telemetry::count_n(Counter::NodeFree, freed as u64);
        freed
    }

    /// Runs automatic maintenance if the policy calls for it: GC once
    /// live nodes cross the GC trigger, then sifting if the survivors
    /// still cross the reorder trigger. Callers must have
    /// [`Manager::protect`]ed every handle they hold. No-op under
    /// [`ReorderPolicy::disabled`] or below the triggers.
    pub fn maybe_maintain(&mut self) {
        if !self.needs_maintenance() {
            return;
        }
        self.collect_garbage();
        if self.live >= self.reorder_trigger {
            // The sweep above already ran: sift directly instead of
            // paying reorder()'s own GC a second time.
            self.sift_pass();
            self.reorder_trigger = self
                .live
                .saturating_mul(2)
                .max(self.policy.reorder_threshold);
        }
        self.gc_trigger = self.live.saturating_mul(2).max(self.policy.gc_threshold);
    }

    /// Whether [`Manager::maybe_maintain`] would act right now — cheap
    /// enough to gate per-operation safe points.
    pub fn needs_maintenance(&self) -> bool {
        self.policy.auto && self.live >= self.gc_trigger
    }

    /// Bumps the epoch, invalidating the computed-table. (Reordering and
    /// GC call this internally.)
    pub(crate) fn invalidate_caches(&mut self) {
        self.cache.invalidate();
        self.epoch += 1;
    }

    // -----------------------------------------------------------------
    // Apply operations.
    // -----------------------------------------------------------------

    /// The if-then-else connective `f ? g : h` — the single apply
    /// operation every binary connective reduces to. Never triggers
    /// maintenance: handles stay valid across any chain of applies.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        // Absorption: a branch equal (or complementary) to the condition
        // collapses to a constant.
        let g = if f == g {
            Bdd::TRUE
        } else if f == !g {
            Bdd::FALSE
        } else {
            g
        };
        let h = if f == h {
            Bdd::FALSE
        } else if f == !h {
            Bdd::TRUE
        } else {
            h
        };
        // Terminal cases.
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        if g == Bdd::FALSE && h == Bdd::TRUE {
            return !f;
        }
        // Normalise for cache density: condition never complemented
        // (swap branches), output complement hoisted out of g.
        if f.is_complement() {
            return self.ite(!f, h, g);
        }
        if g.is_complement() {
            return !self.ite(f, !g, !h);
        }
        if let Some(r) = self.cache.lookup(f, g, h) {
            self.cache_hits += 1;
            telemetry::count(Counter::IteHit);
            return r;
        }
        telemetry::count(Counter::IteMiss);
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let v = self.invperm[top as usize];
        let (f1, f0) = self.cofactors(f, v);
        let (g1, g0) = self.cofactors(g, v);
        let (h1, h0) = self.cofactors(h, v);
        let hi = self.ite(f1, g1, h1);
        let lo = self.ite(f0, g0, h0);
        let r = self.node(v, hi, lo);
        self.cache.store(f, g, h, r);
        r
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, !g, g)
    }

    /// Evaluates `f` under a complete assignment of **variables** to
    /// truth values.
    pub fn eval(&self, f: Bdd, assignment: impl Fn(u32) -> bool) -> bool {
        let mut cur = f;
        let mut parity = false;
        while !cur.is_const() {
            let n = &self.nodes[cur.index() as usize];
            parity ^= cur.is_complement();
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        parity ^= cur.is_complement();
        !parity
    }

    /// Number of decision nodes in the DAG rooted at `f` (complement
    /// bits ignored; constants count as 0).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = enframe_core::fxhash::FxHashSet::default();
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if i == 0 || !seen.insert(i) {
                continue;
            }
            let n = &self.nodes[i as usize];
            stack.push(n.hi.index());
            stack.push(n.lo.index());
        }
        seen.len()
    }

    /// Root node data of `f`: `(index, var, hi, lo)`. Used by model
    /// counting.
    pub(crate) fn node_of(&self, f: Bdd) -> (u32, u32, Bdd, Bdd) {
        let i = f.index();
        let n = &self.nodes[i as usize];
        (i, n.var, n.hi, n.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(man: &mut Manager) -> (Bdd, Bdd, Bdd) {
        (man.var(0), man.var(1), man.var(2))
    }

    #[test]
    fn constants_and_negation() {
        assert_eq!(!Bdd::TRUE, Bdd::FALSE);
        assert_eq!(!!Bdd::TRUE, Bdd::TRUE);
        assert!(Bdd::TRUE.is_const() && Bdd::FALSE.is_const());
    }

    #[test]
    fn hash_consing_gives_pointer_equality() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let a = man.and(x, y);
        let b = man.and(y, x);
        assert_eq!(a, b, "∧ is commutative up to hash-consing");
        let c = man.or(!x, !y);
        assert_eq!(c, !a, "De Morgan via complement edges");
    }

    #[test]
    fn negation_is_free() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let f = man.or(x, y);
        let before = man.len();
        let g = !f;
        assert_eq!(man.len(), before, "¬ allocates no nodes");
        assert_ne!(f, g);
        assert_eq!(!g, f);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        let f = man.ite(x, y, z);
        for code in 0..8u32 {
            let a = |v: u32| code >> v & 1 == 1;
            let want = if a(0) { a(1) } else { a(2) };
            assert_eq!(man.eval(f, a), want, "code {code:03b}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let and = man.and(x, y);
        let or = man.or(x, y);
        let xor = man.xor(x, y);
        for code in 0..4u32 {
            let a = |v: u32| code >> v & 1 == 1;
            assert_eq!(man.eval(and, a), a(0) && a(1));
            assert_eq!(man.eval(or, a), a(0) || a(1));
            assert_eq!(man.eval(xor, a), a(0) ^ a(1));
        }
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        // x ? y : y ≡ y
        let f = man.ite(x, y, y);
        assert_eq!(f, y);
        // tautology collapses to the terminal
        let t = man.or(x, !x);
        assert_eq!(t, Bdd::TRUE);
        let c = man.and(x, !x);
        assert_eq!(c, Bdd::FALSE);
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        assert_eq!(man.size(Bdd::TRUE), 0);
        assert_eq!(man.size(x), 1);
        let xy = man.and(x, y);
        let f = man.or(xy, z);
        assert_eq!(man.size(f), 3);
    }

    #[test]
    fn ordering_is_respected() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let f = man.and(x, y);
        // Root tests the smaller level.
        assert_eq!(man.level(f), 0);
        assert_eq!(man.var_of(f), 0);
        let (hi, lo) = man.cofactors(f, 0);
        assert_eq!(hi, y);
        assert_eq!(lo, Bdd::FALSE);
    }

    #[test]
    fn cache_reuses_results() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        let a = man.ite(x, y, z);
        let before = man.cache_hits();
        let b = man.ite(x, y, z);
        assert_eq!(a, b);
        assert!(man.cache_hits() > before);
    }

    #[test]
    fn gc_frees_unrooted_nodes_and_keeps_roots() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let (x, y, z) = lits(&mut man);
        let keep = man.and(x, y);
        let _dead = man.xor(keep, z); // garbage once unprotected
        man.protect(keep);
        let live_before = man.len();
        let freed = man.collect_garbage();
        assert!(freed > 0, "xor chain must be collected");
        assert!(man.len() < live_before);
        // The kept function still works; recreated literals hash-cons
        // back to the same function.
        for code in 0..4u32 {
            let a = |v: u32| code >> v & 1 == 1;
            assert_eq!(man.eval(keep, a), a(0) && a(1));
        }
        let x2 = man.var(0);
        let y2 = man.var(1);
        assert_eq!(man.and(x2, y2), keep, "unique table survives the sweep");
        man.unprotect(keep);
        man.collect_garbage();
        assert!(man.is_empty(), "nothing rooted: everything is swept");
    }

    #[test]
    fn protection_counts_nest() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let (x, y, _) = lits(&mut man);
        let f = man.and(x, y);
        man.protect(f);
        man.protect(f);
        man.unprotect(f);
        man.collect_garbage();
        assert_eq!(man.size(f), 2, "still protected once: x∧y has 2 nodes");
        assert!(man.eval(f, |_| true));
        man.unprotect(f);
        man.collect_garbage();
        assert!(man.is_empty());
    }

    #[test]
    fn gc_bumps_epoch_and_keeps_cache_bounded() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let e0 = man.epoch();
        man.collect_garbage();
        assert_eq!(man.epoch(), e0 + 1);
        assert!(man.ite_cache_capacity() <= Manager::ITE_CACHE_MAX_CAPACITY);
    }

    #[test]
    fn free_slots_are_reused() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let (x, y, z) = lits(&mut man);
        let f = man.and(x, y);
        man.protect(f);
        let _g = man.and(f, z);
        man.collect_garbage(); // frees the f∧z cone and the dead literals
        let total_slots = man.nodes.len();
        let z2 = man.var(2);
        let h = man.or(f, z2); // must reuse freed slots, not push new ones
        assert!(man.nodes.len() <= total_slots, "freed slots reused");
        assert!(man.eval(h, |v| v == 2));
    }

    /// Shannon expansion holds on random 4-variable functions built from
    /// a seeded formula generator.
    #[test]
    fn random_formulas_agree_with_direct_eval() {
        let mut man = Manager::new();
        let vars: Vec<Bdd> = (0..4).map(|v| man.var(v)).collect();
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pool = vars.clone();
        for _ in 0..40 {
            let a = pool[next() as usize % pool.len()];
            let b = pool[next() as usize % pool.len()];
            let f = match next() % 4 {
                0 => man.and(a, b),
                1 => man.or(a, b),
                2 => man.xor(a, b),
                _ => !a,
            };
            pool.push(f);
        }
        // Check the Shannon identity f = (x ∧ f|x) ∨ (¬x ∧ f|¬x) on the
        // manager itself.
        for &f in &pool {
            let (f1, f0) = if man.var_of(f) == 0 {
                man.cofactors(f, 0)
            } else {
                (f, f)
            };
            let x = vars[0];
            let a = man.and(x, f1);
            let b = man.and(!x, f0);
            let back = man.or(a, b);
            assert_eq!(back, f);
        }
    }
}
