//! The hash-consed OBDD manager.
//!
//! Ordered binary decision diagrams in the classic Brace–Rudell–Bryant
//! style: a global *unique table* guarantees that every (level, then, else)
//! triple is stored exactly once, so two functions are equal iff their
//! [`Bdd`] handles are equal; all Boolean connectives reduce to the
//! ternary [`Manager::ite`] operator, memoised in a computed-table; and
//! negation is **constant time** via complement edges — a [`Bdd`] is a
//! node index plus a complement bit, and `¬f` just flips the bit.
//!
//! Canonical form with complement edges requires one invariant: the
//! *then* edge of a stored node is never complemented ([`Manager::node`]
//! re-normalises by complementing the output instead). There is a single
//! terminal, ⊤; ⊥ is its complement.
//!
//! Levels are plain `u32`s: smaller levels sit closer to the root. The
//! mapping between levels and the engine's [`enframe_core::Var`]s lives in
//! [`crate::ObddEngine`], keeping the manager reusable for any variable
//! universe.

use std::collections::HashMap;

/// A handle to a Boolean function: node index and complement bit packed
/// into one word. Copy-cheap; equality is function equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant-false function (complement of the terminal).
    pub const FALSE: Bdd = Bdd(1);

    fn pack(index: u32, complement: bool) -> Bdd {
        Bdd(index << 1 | complement as u32)
    }

    fn index(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this edge carries the complement bit.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// `¬f`, in constant time (also available as the `!` operator).
    pub fn complement(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Whether this is one of the two constant functions.
    pub fn is_const(self) -> bool {
        self.index() == 0
    }
}

impl std::ops::Not for Bdd {
    type Output = Bdd;
    fn not(self) -> Bdd {
        self.complement()
    }
}

/// Level of the terminal node: below every decision level.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// One stored decision node.
#[derive(Debug, Clone, Copy)]
struct NodeData {
    /// Decision level (smaller = closer to the root).
    level: u32,
    /// The *then* cofactor; never complemented (canonical form).
    hi: Bdd,
    /// The *else* cofactor; may be complemented.
    lo: Bdd,
}

/// The shared store of all BDD nodes, with the unique table and the
/// `ite` computed-table.
#[derive(Debug)]
pub struct Manager {
    nodes: Vec<NodeData>,
    unique: HashMap<(u32, Bdd, Bdd), u32>,
    ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
    cache_hits: u64,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

impl Manager {
    /// An empty manager holding only the terminal.
    pub fn new() -> Self {
        Manager {
            nodes: vec![NodeData {
                level: TERMINAL_LEVEL,
                hi: Bdd::TRUE,
                lo: Bdd::TRUE,
            }],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            cache_hits: 0,
        }
    }

    /// Total stored nodes, terminal included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the manager holds only the terminal.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// `ite` computed-table hits so far (for stats).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The decision level of `f`'s root ([`u32::MAX`] for constants).
    pub fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.index() as usize].level
    }

    /// The positive literal of a level.
    pub fn var(&mut self, level: u32) -> Bdd {
        self.node(level, Bdd::TRUE, Bdd::FALSE)
    }

    /// The negative literal of a level.
    pub fn nvar(&mut self, level: u32) -> Bdd {
        self.node(level, Bdd::FALSE, Bdd::TRUE)
    }

    /// The cofactors `(f|level=1, f|level=0)` of `f` with respect to
    /// `level`, which must be ≤ `f`'s root level.
    pub fn cofactors(&self, f: Bdd, level: u32) -> (Bdd, Bdd) {
        let n = &self.nodes[f.index() as usize];
        debug_assert!(level <= n.level, "cofactor below the root level");
        if n.level != level {
            return (f, f);
        }
        if f.is_complement() {
            (!n.hi, !n.lo)
        } else {
            (n.hi, n.lo)
        }
    }

    /// The unique (reduced) node `level ? hi : lo`.
    ///
    /// # Panics
    /// Panics in debug builds if a child's level is not strictly below
    /// `level` (ordering violation).
    pub fn node(&mut self, level: u32, hi: Bdd, lo: Bdd) -> Bdd {
        debug_assert!(
            self.level(hi) > level && self.level(lo) > level,
            "child level above parent"
        );
        if hi == lo {
            return hi;
        }
        // Canonical form: the then-edge is never complemented.
        if hi.is_complement() {
            return !self.node_raw(level, !hi, !lo);
        }
        self.node_raw(level, hi, lo)
    }

    fn node_raw(&mut self, level: u32, hi: Bdd, lo: Bdd) -> Bdd {
        let key = (level, hi, lo);
        if let Some(&idx) = self.unique.get(&key) {
            return Bdd::pack(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(NodeData { level, hi, lo });
        self.unique.insert(key, idx);
        Bdd::pack(idx, false)
    }

    /// The if-then-else connective `f ? g : h` — the single apply
    /// operation every binary connective reduces to.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        // Absorption: a branch equal (or complementary) to the condition
        // collapses to a constant.
        let g = if f == g {
            Bdd::TRUE
        } else if f == !g {
            Bdd::FALSE
        } else {
            g
        };
        let h = if f == h {
            Bdd::FALSE
        } else if f == !h {
            Bdd::TRUE
        } else {
            h
        };
        // Terminal cases.
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        if g == Bdd::FALSE && h == Bdd::TRUE {
            return !f;
        }
        // Normalise for cache density: condition never complemented
        // (swap branches), output complement hoisted out of g.
        if f.is_complement() {
            return self.ite(!f, h, g);
        }
        if g.is_complement() {
            return !self.ite(f, !g, !h);
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f1, f0) = self.cofactors(f, top);
        let (g1, g0) = self.cofactors(g, top);
        let (h1, h0) = self.cofactors(h, top);
        let hi = self.ite(f1, g1, h1);
        let lo = self.ite(f0, g0, h0);
        let r = self.node(top, hi, lo);
        self.ite_cache.insert(key, r);
        r
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, !g, g)
    }

    /// Evaluates `f` under a complete assignment of levels to truth
    /// values.
    pub fn eval(&self, f: Bdd, assignment: impl Fn(u32) -> bool) -> bool {
        let mut cur = f;
        let mut parity = false;
        while !cur.is_const() {
            let n = &self.nodes[cur.index() as usize];
            parity ^= cur.is_complement();
            cur = if assignment(n.level) { n.hi } else { n.lo };
        }
        parity ^= cur.is_complement();
        !parity
    }

    /// Number of decision nodes in the DAG rooted at `f` (complement
    /// bits ignored; constants count as 0).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if i == 0 || !seen.insert(i) {
                continue;
            }
            let n = &self.nodes[i as usize];
            stack.push(n.hi.index());
            stack.push(n.lo.index());
        }
        seen.len()
    }

    /// Walks the DAG rooted at `f`, calling `visit(level, node)` once per
    /// distinct decision node. Used by model counting.
    pub(crate) fn node_of(&self, f: Bdd) -> (u32, u32, Bdd, Bdd) {
        let i = f.index();
        let n = &self.nodes[i as usize];
        (i, n.level, n.hi, n.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(man: &mut Manager) -> (Bdd, Bdd, Bdd) {
        (man.var(0), man.var(1), man.var(2))
    }

    #[test]
    fn constants_and_negation() {
        assert_eq!(!Bdd::TRUE, Bdd::FALSE);
        assert_eq!(!!Bdd::TRUE, Bdd::TRUE);
        assert!(Bdd::TRUE.is_const() && Bdd::FALSE.is_const());
    }

    #[test]
    fn hash_consing_gives_pointer_equality() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let a = man.and(x, y);
        let b = man.and(y, x);
        assert_eq!(a, b, "∧ is commutative up to hash-consing");
        let c = man.or(!x, !y);
        assert_eq!(c, !a, "De Morgan via complement edges");
    }

    #[test]
    fn negation_is_free() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let f = man.or(x, y);
        let before = man.len();
        let g = !f;
        assert_eq!(man.len(), before, "¬ allocates no nodes");
        assert_ne!(f, g);
        assert_eq!(!g, f);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        let f = man.ite(x, y, z);
        for code in 0..8u32 {
            let a = |l: u32| code >> l & 1 == 1;
            let want = if a(0) { a(1) } else { a(2) };
            assert_eq!(man.eval(f, a), want, "code {code:03b}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let and = man.and(x, y);
        let or = man.or(x, y);
        let xor = man.xor(x, y);
        for code in 0..4u32 {
            let a = |l: u32| code >> l & 1 == 1;
            assert_eq!(man.eval(and, a), a(0) && a(1));
            assert_eq!(man.eval(or, a), a(0) || a(1));
            assert_eq!(man.eval(xor, a), a(0) ^ a(1));
        }
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        // x ? y : y ≡ y
        let f = man.ite(x, y, y);
        assert_eq!(f, y);
        // tautology collapses to the terminal
        let t = man.or(x, !x);
        assert_eq!(t, Bdd::TRUE);
        let c = man.and(x, !x);
        assert_eq!(c, Bdd::FALSE);
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        assert_eq!(man.size(Bdd::TRUE), 0);
        assert_eq!(man.size(x), 1);
        let xy = man.and(x, y);
        let f = man.or(xy, z);
        assert_eq!(man.size(f), 3);
    }

    #[test]
    fn ordering_is_respected() {
        let mut man = Manager::new();
        let (x, y, _) = lits(&mut man);
        let f = man.and(x, y);
        // Root tests the smaller level.
        assert_eq!(man.level(f), 0);
        let (hi, lo) = man.cofactors(f, 0);
        assert_eq!(hi, y);
        assert_eq!(lo, Bdd::FALSE);
    }

    #[test]
    fn cache_reuses_results() {
        let mut man = Manager::new();
        let (x, y, z) = lits(&mut man);
        let a = man.ite(x, y, z);
        let before = man.cache_hits();
        let b = man.ite(x, y, z);
        assert_eq!(a, b);
        assert!(man.cache_hits() > before);
    }

    /// Shannon expansion holds on random 4-level functions built from a
    /// seeded formula generator.
    #[test]
    fn random_formulas_agree_with_direct_eval() {
        let mut man = Manager::new();
        let vars: Vec<Bdd> = (0..4).map(|l| man.var(l)).collect();
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pool = vars.clone();
        for _ in 0..40 {
            let a = pool[next() as usize % pool.len()];
            let b = pool[next() as usize % pool.len()];
            let f = match next() % 4 {
                0 => man.and(a, b),
                1 => man.or(a, b),
                2 => man.xor(a, b),
                _ => !a,
            };
            pool.push(f);
        }
        // Cross-check every pooled function against a reference
        // evaluation derived from its construction is implicit in the
        // connective tests; here we check the Shannon identity
        // f = (x ∧ f|x) ∨ (¬x ∧ f|¬x) on the manager itself.
        for &f in &pool {
            let (f1, f0) = if man.level(f) == 0 {
                man.cofactors(f, 0)
            } else {
                (f, f)
            };
            let x = vars[0];
            let a = man.and(x, f1);
            let b = man.and(!x, f0);
            let back = man.or(a, b);
            assert_eq!(back, f);
        }
    }
}
