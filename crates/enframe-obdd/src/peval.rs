//! Three-valued partial evaluation of event-network nodes.
//!
//! Both knowledge-compilation paths — the Shannon expander of
//! [`crate::compile`] and the d-DNNF compiler of [`crate::dnnf`] — drive
//! their case analysis with the same oracle: given a *partial* assignment
//! of the input variables, which network nodes are already forced? A
//! comparison atom whose sides are determined (or undefined, §3.2)
//! resolves to a constant and prunes the whole branch; a node that stays
//! [`Partial::Unknown`] keeps the expansion alive.
//!
//! The evaluator owns the current assignment and a per-node scratch
//! vector. One [`Evaluator::eval_subtree`] pass fills the scratch
//! bottom-up for every node of a subtree (callers pass subtrees in
//! ascending — topological — node order), after which
//! [`Evaluator::value`] reads off any node's three-valued state. The
//! d-DNNF compiler walks exactly this scratch to build its residual
//! memoisation keys, so the semantics of "forced" is shared by
//! construction.

use crate::ObddError;
use enframe_core::budget::BudgetScope;
use enframe_core::{Value, Var};
use enframe_network::{Network, NodeId, NodeKind};
use enframe_telemetry::{self as telemetry, Counter, Phase};

/// The shared rejection for folded networks: `LoopIn` carries have no
/// flat Boolean semantics, so neither compilation path can encode them.
pub(crate) fn loop_in_unsupported() -> ObddError {
    ObddError::Unsupported(
        "folded networks (LoopIn carries) cannot be compiled directly: build the \
         unfolded network of the same program (Network::build, the §4.2 unfolding \
         workaround) and compile that instead — native folded compilation is the \
         ROADMAP 'incremental recompilation' item"
            .into(),
    )
}

/// An epoch-stamped visited set over network nodes: clearing between
/// traversals is a counter bump, not an `O(net)` refill. The compilers
/// run several traversals per target (cone collection, atom subtree
/// collection, residual-key walks) and used to allocate a fresh
/// `vec![false; net.len()]` for each — measurable allocation churn on
/// many-target networks.
pub(crate) struct VisitStamp {
    stamp: Vec<u32>,
    current: u32,
}

impl VisitStamp {
    pub(crate) fn new(len: usize) -> Self {
        VisitStamp {
            stamp: vec![0; len],
            current: 0,
        }
    }

    /// Starts a fresh traversal: everything reads as unvisited.
    pub(crate) fn reset(&mut self) {
        self.current += 1;
        if self.current == u32::MAX {
            self.stamp.fill(0);
            self.current = 1;
        }
    }

    /// Marks `id` visited; returns whether it was already visited.
    pub(crate) fn visit(&mut self, id: NodeId) -> bool {
        let was = self.stamp[id.index()] == self.current;
        self.stamp[id.index()] = self.current;
        was
    }
}

/// Three-valued partial evaluation result for one network node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Partial {
    /// Boolean node with a forced truth value.
    B(bool),
    /// Numeric node with a forced value.
    V(Value),
    /// Not yet determined by the partial assignment.
    Unknown,
}

/// A reusable three-valued evaluator over one network: the current
/// partial assignment plus per-node scratch.
///
/// Two usage modes share the same node semantics:
///
/// * **Pass mode** ([`Evaluator::eval_subtree`]) — re-evaluate a whole
///   subtree bottom-up after the caller mutated the assignment directly
///   via [`Evaluator::assign`]. The Shannon expander uses this: its
///   subtrees are single atoms, small enough to sweep per branch.
/// * **Incremental mode** ([`Evaluator::prime`] once, then
///   [`Evaluator::assign_monotone`] / [`Evaluator::undo_to`] per
///   decision) — keep the whole network's scratch current by
///   propagating `Unknown` → determined flips upward along parent
///   edges, with a trail for exact backtracking. The d-DNNF compiler
///   uses this: its blocks span whole target cones, and over one
///   root-to-leaf decision path each node flips (and is re-evaluated)
///   at most once.
pub(crate) struct Evaluator<'n> {
    net: &'n Network,
    /// Current partial assignment, indexed by variable.
    assignment: Vec<Option<bool>>,
    /// Partial values per network node.
    scratch: Vec<Partial>,
    /// The `Var` nodes of each variable (filled by [`Evaluator::prime`]).
    var_nodes: Vec<Vec<NodeId>>,
    /// Worklist of freshly determined nodes during a propagation.
    work: Vec<NodeId>,
    /// Nodes that went `Unknown` → determined since their mark was
    /// taken, newest last. Three-valued evaluation is **monotone** under
    /// assignment extension (a determined node keeps its value in every
    /// extension), so propagation only ever flips `Unknown` nodes and
    /// backtracking is exactly: restore these to `Unknown`.
    trail: Vec<NodeId>,
    /// Propagation cone: node `i` participates iff `active[i] ==
    /// active_stamp`. Restricting to one target's cone keeps each delta
    /// from sweeping the 30-odd unrelated targets of a many-target
    /// network. Purely a cost filter: the trail discipline already
    /// guarantees out-of-cone nodes keep their empty-assignment values
    /// across targets.
    active: Vec<u32>,
    active_stamp: u32,
    /// Budget state shared with the owning compiler: trail pushes are
    /// the unit-propagation work unit, charged as budget steps.
    scope: BudgetScope,
}

impl<'n> Evaluator<'n> {
    pub(crate) fn new(net: &'n Network, scope: BudgetScope) -> Self {
        Evaluator {
            net,
            assignment: vec![None; net.n_vars as usize],
            scratch: vec![Partial::Unknown; net.len()],
            var_nodes: Vec::new(),
            work: Vec::new(),
            trail: Vec::new(),
            active: vec![0; net.len()],
            active_stamp: 0,
            scope,
        }
    }

    /// Restricts propagation to `cone` (every node whose value the
    /// caller will read until the next restriction). Must only be called
    /// while the assignment is empty — see the `active` field invariant.
    pub(crate) fn restrict_to(&mut self, cone: &[NodeId]) {
        debug_assert!(self.assignment.iter().all(Option::is_none));
        self.active_stamp += 1;
        for &n in cone {
            self.active[n.index()] = self.active_stamp;
        }
    }

    /// Sets (or with `None`, retracts) one variable of the assignment
    /// **without** propagating — pass-mode callers re-evaluate subtrees
    /// themselves.
    pub(crate) fn assign(&mut self, v: Var, value: Option<bool>) {
        self.assignment[v.index()] = value;
    }

    /// The three-valued state of `id` as of the last evaluation that
    /// covered it.
    pub(crate) fn value(&self, id: NodeId) -> &Partial {
        &self.scratch[id.index()]
    }

    /// Evaluates the entire network bottom-up under the current
    /// assignment and indexes the `Var` nodes, enabling
    /// [`Evaluator::assign_monotone`].
    pub(crate) fn prime(&mut self) -> Result<(), ObddError> {
        let _span = telemetry::span(Phase::UnitProp);
        self.var_nodes = vec![Vec::new(); self.net.n_vars as usize];
        for i in 0..self.net.len() {
            let id = NodeId(i as u32);
            if let NodeKind::Var(v) = self.net.node(id).kind {
                self.var_nodes[v.index()].push(id);
            }
            self.scratch[i] = self.eval_node(id)?;
        }
        Ok(())
    }

    /// Assigns `v` and propagates every `Unknown` → determined flip
    /// upward through parent edges. Returns a trail mark for
    /// [`Evaluator::undo_to`]. Requires a prior [`Evaluator::prime`].
    ///
    /// Monotonicity does the heavy lifting: already-determined nodes
    /// cannot change under an extension, so they are never re-evaluated —
    /// over a whole root-to-leaf decision path each node flips at most
    /// once, instead of the cone being re-swept at every step.
    pub(crate) fn assign_monotone(&mut self, v: Var, value: bool) -> Result<usize, ObddError> {
        let mark = self.trail.len();
        self.assignment[v.index()] = Some(value);
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        for i in 0..self.var_nodes[v.index()].len() {
            let id = self.var_nodes[v.index()][i];
            if self.active[id.index()] == self.active_stamp
                && self.scratch[id.index()] == Partial::Unknown
            {
                self.scratch[id.index()] = Partial::B(value);
                self.trail.push(id);
                work.push(id);
            }
        }
        let result = self.flush(&mut work);
        self.work = work;
        result?;
        let pushed = (self.trail.len() - mark) as u64;
        telemetry::count_n(Counter::TrailPush, pushed);
        // Budget safe point. Failing here leaves the propagation in
        // place, like any other evaluation error — callers treat every
        // error as fatal for the compile (the assignment may be dirty).
        self.scope.check_steps(pushed)?;
        Ok(mark)
    }

    /// Restores every node determined since `mark` to `Unknown` and
    /// retracts `v` — exact inverse of the matching
    /// [`Evaluator::assign_monotone`].
    pub(crate) fn undo_to(&mut self, mark: usize, v: Var) {
        self.assignment[v.index()] = None;
        telemetry::count_n(Counter::TrailBacktrack, (self.trail.len() - mark) as u64);
        while self.trail.len() > mark {
            let id = self.trail.pop().expect("trail length checked");
            self.scratch[id.index()] = Partial::Unknown;
        }
    }

    /// Drains the propagation worklist: re-evaluates `Unknown` parents
    /// of freshly determined nodes, trailing and enqueueing each one
    /// that becomes determined. Order-free: a node's determined value
    /// depends only on its children's determined values, which never
    /// change again, so chaotic iteration converges to the same fixpoint
    /// as a topological sweep.
    fn flush(&mut self, work: &mut Vec<NodeId>) -> Result<(), ObddError> {
        while let Some(id) = work.pop() {
            for i in 0..self.net.node(id).parents.len() {
                let p = self.net.node(id).parents[i];
                if self.active[p.index()] != self.active_stamp
                    || self.scratch[p.index()] != Partial::Unknown
                {
                    continue;
                }
                let new = self.eval_node(p)?;
                if new != Partial::Unknown {
                    self.scratch[p.index()] = new;
                    self.trail.push(p);
                    work.push(p);
                }
            }
        }
        Ok(())
    }

    /// Evaluates every node of `subtree` (ascending topological order)
    /// under the current assignment, bottom-up, leaving the results
    /// readable via [`Evaluator::value`].
    pub(crate) fn eval_subtree(&mut self, subtree: &[NodeId]) -> Result<(), ObddError> {
        for &id in subtree {
            let val = self.eval_node(id)?;
            self.scratch[id.index()] = val;
        }
        Ok(())
    }

    /// One node's three-valued value from its children's scratch values
    /// and the current assignment.
    fn eval_node(&self, id: NodeId) -> Result<Partial, ObddError> {
        let node = self.net.node(id);
        Ok(match &node.kind {
            NodeKind::Var(v) => match self.assignment[v.index()] {
                Some(b) => Partial::B(b),
                None => Partial::Unknown,
            },
            NodeKind::ConstBool(b) => Partial::B(*b),
            NodeKind::Not => match self.scratch[node.children[0].index()] {
                Partial::B(b) => Partial::B(!b),
                _ => Partial::Unknown,
            },
            NodeKind::And => {
                let mut out = Partial::B(true);
                for &c in &node.children {
                    match self.scratch[c.index()] {
                        Partial::B(false) => {
                            out = Partial::B(false);
                            break;
                        }
                        Partial::B(true) => {}
                        _ => out = Partial::Unknown,
                    }
                }
                out
            }
            NodeKind::Or => {
                let mut out = Partial::B(false);
                for &c in &node.children {
                    match self.scratch[c.index()] {
                        Partial::B(true) => {
                            out = Partial::B(true);
                            break;
                        }
                        Partial::B(false) => {}
                        _ => out = Partial::Unknown,
                    }
                }
                out
            }
            NodeKind::Cmp(op) => {
                let a = &self.scratch[node.children[0].index()];
                let b = &self.scratch[node.children[1].index()];
                // An undefined side makes any comparison true (§3.2),
                // even when the other side is still unknown.
                match (a, b) {
                    (Partial::V(Value::Undef), _) | (_, Partial::V(Value::Undef)) => {
                        Partial::B(true)
                    }
                    (Partial::V(x), Partial::V(y)) => Partial::B(x.compare(*op, y)?),
                    _ => Partial::Unknown,
                }
            }
            NodeKind::ConstVal => Partial::V(node.value.clone().expect("ConstVal payload")),
            NodeKind::Cond => match self.scratch[node.children[0].index()] {
                Partial::B(true) => Partial::V(node.value.clone().expect("Cond payload")),
                Partial::B(false) => Partial::V(Value::Undef),
                _ => Partial::Unknown,
            },
            NodeKind::Guard => {
                let guard = &self.scratch[node.children[0].index()];
                let inner = &self.scratch[node.children[1].index()];
                match (guard, inner) {
                    // Both outcomes are u once the payload is u.
                    (_, Partial::V(Value::Undef)) | (Partial::B(false), _) => {
                        Partial::V(Value::Undef)
                    }
                    (Partial::B(true), Partial::V(v)) => Partial::V(v.clone()),
                    _ => Partial::Unknown,
                }
            }
            NodeKind::Sum => {
                let mut acc = Some(Value::Undef);
                for &c in &node.children {
                    match (&self.scratch[c.index()], acc.take()) {
                        (Partial::V(v), Some(a)) => acc = Some(a.add(v)?),
                        _ => break,
                    }
                }
                match acc {
                    Some(v) => Partial::V(v),
                    None => Partial::Unknown,
                }
            }
            NodeKind::Prod => {
                // An undefined factor absorbs the whole product (§3.2),
                // so one known-u child resolves it early.
                if node
                    .children
                    .iter()
                    .any(|&c| self.scratch[c.index()] == Partial::V(Value::Undef))
                {
                    Partial::V(Value::Undef)
                } else {
                    let mut acc = Some(Value::Num(1.0));
                    for &c in &node.children {
                        match (&self.scratch[c.index()], acc.take()) {
                            (Partial::V(v), Some(a)) => acc = Some(a.mul(v)?),
                            _ => break,
                        }
                    }
                    match acc {
                        Some(v) => Partial::V(v),
                        None => Partial::Unknown,
                    }
                }
            }
            NodeKind::Inv => match &self.scratch[node.children[0].index()] {
                Partial::V(v) => Partial::V(v.inv()?),
                _ => Partial::Unknown,
            },
            NodeKind::Pow(r) => match &self.scratch[node.children[0].index()] {
                Partial::V(v) => Partial::V(v.pow(*r)?),
                _ => Partial::Unknown,
            },
            NodeKind::Dist => {
                let a = &self.scratch[node.children[0].index()];
                let b = &self.scratch[node.children[1].index()];
                match (a, b) {
                    (Partial::V(Value::Undef), _) | (_, Partial::V(Value::Undef)) => {
                        Partial::V(Value::Undef)
                    }
                    (Partial::V(x), Partial::V(y)) => Partial::V(x.dist(y)?),
                    _ => Partial::Unknown,
                }
            }
            NodeKind::LoopIn { .. } => return Err(loop_in_unsupported()),
        })
    }
}
