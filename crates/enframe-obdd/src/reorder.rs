//! Dynamic variable reordering: group sifting via in-place adjacent-level
//! swaps (Rudell's algorithm, block variant).
//!
//! OBDD size is notoriously order-sensitive: the mutex and conditional
//! correlation schemes compile to read-once/hierarchical lineage where
//! the grouped static order is already near-optimal, but the *positive*
//! scheme's shared-pool disjunctions can be far from it. Sifting walks
//! each variable through every position, keeping the best; **group
//! sifting** moves the var-groups of one multi-valued choice (mutex
//! chains, conditional step pairs — contiguous level *blocks*, declared
//! via [`Manager::set_level_blocks`]) as indivisible units, preserving
//! the adjacency that keeps those encodings linear.
//!
//! The primitive is the **adjacent-level swap**: exchanging levels `l`
//! and `l+1` only touches nodes labelled with the upper variable —
//! ones independent of the lower variable merely change level (a
//! permutation update; subtables are keyed by variable, so they do not
//! even move), dependent ones are rewritten *in place* around the
//! Shannon expansion on the lower variable, so every node index keeps
//! denoting the same Boolean function and no external handle moves.
//! Nodes orphaned by a rewrite are freed immediately via the stored-edge
//! reference counts, which keeps the live-size signal sifting steers by
//! exact.
//!
//! [`Manager::reorder`] runs one full sifting pass: GC first (so sizes
//! reflect live nodes only), then blocks in decreasing node-count order,
//! each walked down then up with the abort factor
//! [`crate::ReorderPolicy::max_growth`], then parked at its best seen
//! position. A pass never ends larger than it started — the best seen
//! position includes the starting one.

use crate::manager::{Manager, NodeData};

impl Manager {
    /// One full group-sifting pass over the current order. Requires
    /// every externally held handle to be [`Manager::protect`]ed (the
    /// pass GCs first, and the swap rewrite frees orphaned nodes).
    /// Handles keep denoting the same functions afterwards; only the
    /// variable↔level permutation changes. Bumps [`Manager::epoch`].
    pub fn reorder(&mut self) {
        self.collect_garbage();
        self.sift_pass();
    }

    /// The sifting pass of [`Manager::reorder`], assuming garbage was
    /// just collected (sizes must reflect live nodes only).
    pub(crate) fn sift_pass(&mut self) {
        let _span = enframe_telemetry::span(enframe_telemetry::Phase::Reorder);
        let nblocks = self.blocks.len();
        if nblocks >= 2 && self.live > 0 {
            // done[i] travels with the block at position i. Each round
            // sifts the largest not-yet-sifted block by node count.
            let mut done = vec![false; nblocks];
            while let Some(p) = (0..nblocks)
                .filter(|&p| !done[p])
                .max_by_key(|&p| self.block_nodes(p))
            {
                done[p] = true;
                self.sift_block(p, &mut done);
            }
        }
        self.invalidate_caches();
        self.reorders += 1;
    }

    /// Node count of the block at position `p` (sum over its levels).
    fn block_nodes(&self, p: usize) -> usize {
        let a = self.block_offset(p);
        (a..a + self.blocks[p] as usize)
            .map(|l| self.subtables[self.invperm[l] as usize].len())
            .sum()
    }

    /// First level of the block at position `p`.
    fn block_offset(&self, p: usize) -> usize {
        self.blocks[..p].iter().map(|&s| s as usize).sum()
    }

    /// Walks the block at position `p` down to the bottom, then up to
    /// the top, then parks it at the position with the smallest manager
    /// size seen (the starting position on ties, so a pass without a
    /// strict improvement restores the original order). Either walk
    /// aborts early once the manager grows past `max_growth × best`.
    fn sift_block(&mut self, p: usize, flags: &mut [bool]) {
        let nblocks = self.blocks.len();
        let max_growth = self.policy.max_growth.max(1.0);
        let mut pos = p;
        let mut best = self.live;
        let mut best_pos = p;
        // Down.
        while pos + 1 < nblocks {
            self.swap_adjacent_blocks(pos, flags);
            pos += 1;
            if self.live < best {
                best = self.live;
                best_pos = pos;
            }
            if self.live as f64 > max_growth * best as f64 {
                break;
            }
        }
        // Up (passes back through the starting position).
        while pos > 0 {
            self.swap_adjacent_blocks(pos - 1, flags);
            pos -= 1;
            if self.live < best {
                best = self.live;
                best_pos = pos;
            }
            if self.live as f64 > max_growth * best as f64 {
                break;
            }
        }
        // Settle at the best position seen. Within one sift only this
        // block moves, so reaching best_pos reproduces exactly the order
        // (and therefore the size) recorded there.
        while pos < best_pos {
            self.swap_adjacent_blocks(pos, flags);
            pos += 1;
        }
        while pos > best_pos {
            self.swap_adjacent_blocks(pos - 1, flags);
            pos -= 1;
        }
        debug_assert_eq!(self.live, best, "settling reproduces the best size");
    }

    /// Swaps the adjacent blocks at positions `p` and `p+1` (their
    /// `done` flags travel along) by bubbling each level of the lower
    /// block up through the upper block.
    fn swap_adjacent_blocks(&mut self, p: usize, flags: &mut [bool]) {
        let a = self.block_offset(p) as u32;
        let s = self.blocks[p];
        let t = self.blocks[p + 1];
        for j in 0..t {
            // The j-th level of the lower block sits at a+s+j; bubble it
            // up to a+j.
            for l in ((a + j)..(a + s + j)).rev() {
                self.swap_adjacent_levels(l);
            }
        }
        self.blocks.swap(p, p + 1);
        flags.swap(p, p + 1);
    }

    /// Exchanges levels `l` and `l+1` in place. With x at level `l` and
    /// y at `l+1`: y-nodes and y-independent x-nodes only change level
    /// (implicit in the permutation update), while each y-dependent
    /// x-node is rewritten in place as a y-node over fresh x-children,
    /// preserving its function and its index.
    fn swap_adjacent_levels(&mut self, l: u32) {
        let x = self.invperm[l as usize];
        let y = self.invperm[l as usize + 1];
        for i in self.subtables[x as usize].indices() {
            let NodeData { hi: f1, lo: f0, .. } = self.nodes[i as usize];
            if self.var_of(f1) != y && self.var_of(f0) != y {
                continue; // independent of y: moves with the permutation
            }
            // Remove under the old key before the children change.
            self.subtables[x as usize].remove(&self.nodes, f1, f0);
            let (f11, f10) = self.cofactors(f1, y);
            let (f01, f00) = self.cofactors(f0, y);
            // New children still test x (formally the upper variable
            // until the permutation flips below, so ordering assertions
            // hold): g1 = f|y=1, g0 = f|y=0. f1 and thus f11 are
            // canonical (uncomplemented), so g1 comes back uncomplemented
            // — the rewritten node needs no output complement and its
            // parents are untouched.
            let g1 = self.node(x, f11, f01);
            let g0 = self.node(x, f10, f00);
            debug_assert!(!g1.is_complement(), "then-edge stays canonical");
            self.nodes[i as usize] = NodeData {
                var: y,
                hi: g1,
                lo: g0,
            };
            // Edge bookkeeping: node i now stores g1/g0 and no longer
            // stores f1/f0. Bump before release so shared nodes never
            // transiently hit zero; orphans are freed immediately so
            // sifting steers by exact sizes.
            self.bump_stored_edge(g1);
            self.bump_stored_edge(g0);
            self.release_edge(f1);
            self.release_edge(f0);
            self.subtables[y as usize].insert(&self.nodes, i);
        }
        self.perm.swap(x as usize, y as usize);
        self.invperm.swap(l as usize, l as usize + 1);
    }
}

#[cfg(test)]
mod tests {
    use crate::manager::{Bdd, Manager, ReorderPolicy};
    use crate::wmc::Wmc;

    /// An order-sensitive function: f = (x0∧x3) ∨ (x1∧x4) ∨ (x2∧x5) is
    /// linear under the interleaved order x0x3x1x4x2x5 but exponential
    /// in the number of pairs under the grouped order x0x1x2x3x4x5.
    fn pairs_function(man: &mut Manager) -> Bdd {
        let mut f = Bdd::FALSE;
        for i in 0..3u32 {
            let a = man.var(i);
            let b = man.var(i + 3);
            let ab = man.and(a, b);
            f = man.or(f, ab);
        }
        f
    }

    #[test]
    fn sifting_shrinks_an_order_sensitive_function() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let f = pairs_function(&mut man);
        man.protect(f);
        man.collect_garbage();
        let before = man.len();
        man.reorder();
        let after = man.len();
        assert!(
            after < before,
            "sifting must shrink the pairs function: {before} -> {after}"
        );
        // The minimal interleaved form has 2 nodes per pair.
        assert_eq!(man.size(f), 6, "sifting finds the interleaved order");
        assert_eq!(man.stats().reorders, 1);
    }

    #[test]
    fn reorder_preserves_semantics_and_handles() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        let f = pairs_function(&mut man);
        let x0 = man.var(0);
        let g = man.xor(f, x0);
        man.protect(f);
        man.protect(g);
        let mut wmc = Wmc::new(&man, vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
        let (pf, pg) = (wmc.probability(f), wmc.probability(g));
        man.reorder();
        // Same handles, same functions, under every assignment.
        for code in 0..64u32 {
            let a = |v: u32| code >> v & 1 == 1;
            let want_f = (a(0) && a(3)) || (a(1) && a(4)) || (a(2) && a(5));
            assert_eq!(man.eval(f, a), want_f, "f at {code:06b}");
            assert_eq!(man.eval(g, a), want_f ^ a(0), "g at {code:06b}");
        }
        let mut wmc = Wmc::new(&man, vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
        assert!((wmc.probability(f) - pf).abs() < 1e-12);
        assert!((wmc.probability(g) - pg).abs() < 1e-12);
        // Reordering is idempotent on an already-sifted manager: a
        // second pass never grows it.
        let sifted = man.len();
        man.reorder();
        assert!(man.len() <= sifted);
    }

    #[test]
    fn group_blocks_stay_adjacent() {
        let mut man = Manager::with_policy(ReorderPolicy::disabled());
        man.declare_vars(6);
        // Two blocks of 2 (vars 0-1 and 2-3) and two singletons.
        man.set_level_blocks(&[2, 2, 1, 1]);
        let f = pairs_function(&mut man);
        man.protect(f);
        man.reorder();
        for pair in [(0u32, 1u32), (2, 3)] {
            let (la, lb) = (man.level_of_var(pair.0), man.level_of_var(pair.1));
            assert_eq!(
                la + 1,
                lb,
                "grouped vars {pair:?} must stay adjacent and ordered"
            );
        }
        // Still the same function.
        for code in 0..64u32 {
            let a = |v: u32| code >> v & 1 == 1;
            let want = (a(0) && a(3)) || (a(1) && a(4)) || (a(2) && a(5));
            assert_eq!(man.eval(f, a), want);
        }
    }

    #[test]
    fn automatic_maintenance_triggers_on_growth() {
        let mut man = Manager::with_policy(ReorderPolicy {
            auto: true,
            gc_threshold: 32,
            // Below the protected function's size, so the post-GC
            // survivor count still crosses the sifting trigger.
            reorder_threshold: 8,
            max_growth: 1.2,
        });
        // Interleave keeps: grow an order-sensitive function, protect it,
        // and pile up garbage; maintenance points must fire.
        let f = pairs_function(&mut man);
        man.protect(f);
        for i in 6..40u32 {
            let v = man.var(i);
            let _garbage = man.and(f, v);
            man.maybe_maintain();
        }
        let stats = man.stats();
        assert!(stats.gc_runs > 0, "growth must trigger GC");
        assert!(stats.reorders > 0, "growth must trigger sifting");
        // f survived it all.
        assert!(man.eval(f, |v| v == 0 || v == 3));
    }
}
