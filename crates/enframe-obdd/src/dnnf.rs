//! # d-DNNF compilation — breaking the Shannon-expansion wall
//!
//! The OBDD route ([`crate::ObddEngine`]) compiles comparison atoms by
//! Shannon expansion over *full assignments* of the atom's support: every
//! partial assignment is its own branch, so aggregate-heavy workloads
//! (the k-medoids pipeline, where each atom compares sums over all
//! points) pay `~2^v` branches per atom even though the resulting
//! diagrams stay tiny. PR 3 measured the wall precisely: 111 k branches
//! at v = 12 vs 874 k at v = 14, with the BDD manager peak under 500
//! nodes throughout — the cost is the *branch count*, not the diagram.
//!
//! This module removes that exponent by compiling targets into
//! **deterministic decomposable negation normal form** (d-DNNF) with
//! expansion memoised on **residual states** instead of assignments:
//!
//! * **Hash-consed d-DNNF nodes** — literals, decomposable `AND`
//!   (children over pairwise disjoint variable sets) and deterministic
//!   `OR` (children pairwise logically inconsistent, here always the two
//!   branches of a decision on one variable). Both invariants hold by
//!   construction, which is what makes weighted model counting a single
//!   linear pass ([`wmc`]).
//! * **Residual-state memoisation** — a branch is described not by *how*
//!   it was reached (the assignment prefix) but by *what is left*: the
//!   three-valued frontier of the undetermined cone, with every
//!   undetermined `Sum`/`Prod` summarised by its **accumulated partial
//!   value** over the already-forced children. Two prefixes that force
//!   the same lineage events and accumulate the same partial sums are the
//!   same state — the `2^v` branch tree collapses onto the DP over
//!   distinct `(next support level, partial sum)` states. On the
//!   k-medoids comparison workload the sums are functions of a handful of
//!   shared lineage events, so the state space is polynomial where the
//!   assignment tree is exponential.
//! * **Decomposable-`AND` factoring** — conjunctions whose conjuncts
//!   touch disjoint residual variable sets split into independent
//!   sub-compilations joined by a decomposable `AND`, instead of being
//!   expanded through one interleaved decision tree.
//!
//! ```
//! use enframe_core::{Program, VarTable};
//! use enframe_network::Network;
//! use enframe_obdd::dnnf::{DnnfEngine, DnnfOptions};
//!
//! let mut p = Program::new();
//! let x = p.fresh_var();
//! let y = p.fresh_var();
//! let e = p.declare_event("E", Program::or([Program::var(x), Program::var(y)]));
//! p.add_target(e);
//! let net = Network::build(&p.ground().unwrap()).unwrap();
//! let engine = DnnfEngine::compile(&net, &DnnfOptions::default()).unwrap();
//! let vt = VarTable::uniform(2, 0.5);
//! assert!((engine.probabilities(&vt)[0] - 0.75).abs() < 1e-12);
//! ```

pub mod wmc;

use crate::peval::{loop_in_unsupported, Evaluator, Partial, VisitStamp};
use crate::{first_worker_error, panic_message, recv_next, ObddError};
use enframe_core::budget::{Budget, BudgetScope, Exceeded, Resource};
use enframe_core::failpoint::{self, Site};
use enframe_core::fxhash::FxHashMap;
use enframe_core::{Value, Var, VarTable};
use enframe_network::{Network, NodeId, NodeKind};
use enframe_prob::order::{static_order, VarOrder};
use enframe_telemetry::{self as telemetry, Counter, Phase};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle to a d-DNNF node. Equality is node identity; hash-consing
/// makes node identity function identity *per construction site* (the
/// compiler never builds two structurally equal nodes with different
/// references).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dnnf(u32);

impl Dnnf {
    /// The constant-true sentence.
    pub const TRUE: Dnnf = Dnnf(0);
    /// The constant-false sentence.
    pub const FALSE: Dnnf = Dnnf(1);

    /// The dense node index (constants are 0 and 1).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two constants.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// Rebuilds a handle from a dense node index — the inverse of
    /// [`Dnnf::index`], for artifact deserialisation. The handle is only
    /// meaningful against the manager whose index space it came from;
    /// [`DnnfManager::from_nodes`] validates the referenced structure.
    pub fn from_index(i: u32) -> Dnnf {
        Dnnf(i)
    }
}

/// One stored d-DNNF node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DnnfNode {
    /// Constant ⊤ (index 0) or ⊥ (index 1).
    Const(bool),
    /// A literal over an input variable.
    Lit {
        /// The variable.
        var: Var,
        /// Polarity: `true` for `x`, `false` for `¬x`.
        positive: bool,
    },
    /// Decomposable conjunction: children mention pairwise disjoint
    /// variable sets.
    And(Box<[Dnnf]>),
    /// Deterministic disjunction: children are pairwise logically
    /// inconsistent (every `Or` built here is a decision on one
    /// variable, so any two children disagree on that variable).
    Or(Box<[Dnnf]>),
}

/// The hash-consed d-DNNF node store.
///
/// Nodes are created bottom-up, so every child index is smaller than its
/// parent's — the invariant the single-pass model counter relies on.
#[derive(Debug, Default)]
pub struct DnnfManager {
    nodes: Vec<DnnfNode>,
    unique: FxHashMap<DnnfNode, Dnnf>,
}

impl DnnfManager {
    /// An empty manager holding only the two constants.
    pub fn new() -> Self {
        DnnfManager {
            nodes: vec![DnnfNode::Const(true), DnnfNode::Const(false)],
            unique: FxHashMap::default(),
        }
    }

    /// The stored node behind a handle.
    pub fn node(&self, f: Dnnf) -> &DnnfNode {
        &self.nodes[f.index()]
    }

    /// Total stored nodes, constants included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the manager holds only the two constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 2
    }

    /// All stored nodes in creation (topological) order.
    pub fn nodes(&self) -> &[DnnfNode] {
        &self.nodes
    }

    /// Total child edges over all `And`/`Or` nodes.
    pub fn edges(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                DnnfNode::And(cs) | DnnfNode::Or(cs) => cs.len(),
                _ => 0,
            })
            .sum()
    }

    /// The literal `x` (positive) or `¬x`.
    pub fn lit(&mut self, var: Var, positive: bool) -> Dnnf {
        self.intern(DnnfNode::Lit { var, positive })
    }

    /// Decomposable conjunction of `children` (the caller guarantees
    /// pairwise disjoint variable sets). Flattens nested conjunctions,
    /// drops ⊤, and short-circuits on ⊥.
    pub fn and(&mut self, children: impl IntoIterator<Item = Dnnf>) -> Dnnf {
        let mut flat: Vec<Dnnf> = Vec::new();
        for c in children {
            if c == Dnnf::FALSE {
                return Dnnf::FALSE;
            }
            if c == Dnnf::TRUE {
                continue;
            }
            match &self.nodes[c.index()] {
                DnnfNode::And(cs) => flat.extend(cs.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => Dnnf::TRUE,
            1 => flat[0],
            _ => self.intern(DnnfNode::And(flat.into_boxed_slice())),
        }
    }

    /// The decision sentence `(x ∧ hi) ∨ (¬x ∧ lo)` — the only way this
    /// manager builds `Or` nodes, so every disjunction is deterministic
    /// (the branches disagree on `x`) and decomposable (`x` is assigned
    /// inside neither branch).
    pub fn decision(&mut self, var: Var, hi: Dnnf, lo: Dnnf) -> Dnnf {
        if hi == lo {
            return hi;
        }
        if hi == Dnnf::TRUE && lo == Dnnf::FALSE {
            return self.lit(var, true);
        }
        if hi == Dnnf::FALSE && lo == Dnnf::TRUE {
            return self.lit(var, false);
        }
        let pos = self.lit(var, true);
        let neg = self.lit(var, false);
        let t = self.and([pos, hi]);
        let e = self.and([neg, lo]);
        debug_assert!(t != e, "decision branches must differ");
        if t == Dnnf::FALSE {
            return e;
        }
        if e == Dnnf::FALSE {
            return t;
        }
        let mut cs = [t, e];
        cs.sort_unstable();
        self.intern(DnnfNode::Or(Box::new(cs)))
    }

    /// The number of nodes reachable from `f` (constants excluded).
    pub fn size(&self, f: Dnnf) -> usize {
        let mut seen = enframe_core::fxhash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            if let DnnfNode::And(cs) | DnnfNode::Or(cs) = &self.nodes[n.index()] {
                stack.extend(cs.iter().copied());
            }
        }
        seen.len()
    }

    /// Evaluates `f` under a complete assignment.
    pub fn eval(&self, f: Dnnf, assignment: &impl Fn(Var) -> bool) -> bool {
        match &self.nodes[f.index()] {
            DnnfNode::Const(b) => *b,
            DnnfNode::Lit { var, positive } => assignment(*var) == *positive,
            DnnfNode::And(cs) => cs.iter().all(|&c| self.eval(c, assignment)),
            DnnfNode::Or(cs) => cs.iter().any(|&c| self.eval(c, assignment)),
        }
    }

    fn intern(&mut self, node: DnnfNode) -> Dnnf {
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Dnnf(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.unique.insert(node, r);
        r
    }

    /// Rebuilds a manager from an untrusted creation-ordered node array
    /// (artifact deserialisation). Every invariant the compiler
    /// guarantees by construction is *checked* here instead, so a
    /// corrupted or hand-crafted array is rejected with a description
    /// rather than poisoning later queries:
    ///
    /// * indices 0/1 are ⊤/⊥ and no other constant is stored;
    /// * every child handle points strictly below its parent (the
    ///   topological order the single-pass counter relies on);
    /// * `And`/`Or` children are strictly sorted (the canonical form
    ///   hash-consing produces), have at least two entries, reference no
    ///   constants, and `And` children are never themselves `And`
    ///   (flattening) while `Or` nodes are binary (decision form);
    /// * no two stored nodes are structurally equal (hash-consing).
    ///
    /// Decomposability and determinism are *semantic* invariants over
    /// variable supports; the artifact store revalidates those
    /// separately on load.
    pub fn from_nodes(nodes: Vec<DnnfNode>) -> Result<DnnfManager, String> {
        if nodes.len() < 2
            || nodes[0] != DnnfNode::Const(true)
            || nodes[1] != DnnfNode::Const(false)
        {
            return Err("node array must start with the ⊤/⊥ constants".into());
        }
        let mut man = DnnfManager {
            nodes: vec![DnnfNode::Const(true), DnnfNode::Const(false)],
            unique: FxHashMap::default(),
        };
        for (i, node) in nodes.into_iter().enumerate().skip(2) {
            match &node {
                DnnfNode::Const(_) => {
                    return Err(format!("stray constant at node {i}"));
                }
                DnnfNode::Lit { .. } => {}
                DnnfNode::And(cs) | DnnfNode::Or(cs) => {
                    if cs.len() < 2 {
                        return Err(format!("node {i}: fewer than two children"));
                    }
                    if matches!(node, DnnfNode::Or(_)) && cs.len() != 2 {
                        return Err(format!("node {i}: Or is not a binary decision"));
                    }
                    if !cs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!("node {i}: children not strictly sorted"));
                    }
                    for &c in cs.iter() {
                        if c.index() >= i {
                            return Err(format!(
                                "node {i}: child {} not created before its parent",
                                c.index()
                            ));
                        }
                        if c.is_const() {
                            return Err(format!("node {i}: constant child survived reduction"));
                        }
                        if matches!(node, DnnfNode::And(_))
                            && matches!(man.nodes[c.index()], DnnfNode::And(_))
                        {
                            return Err(format!("node {i}: unflattened nested And"));
                        }
                    }
                }
            }
            let handle = Dnnf(man.nodes.len() as u32);
            if man.unique.insert(node.clone(), handle).is_some() {
                return Err(format!("node {i}: duplicate of an earlier node"));
            }
            man.nodes.push(node);
        }
        Ok(man)
    }

    /// Imports every node of `other` into this manager, returning the
    /// handle map (indexed by `other`'s node index). Structurally equal
    /// nodes hash-cons onto existing ones, so absorbing the per-worker
    /// managers of a parallel compilation deduplicates shared structure
    /// across workers. Creation order (children before parents) and the
    /// canonical sorted child order of `And`/`Or` nodes are preserved —
    /// children are remapped and re-sorted under this manager's handle
    /// numbering.
    pub fn absorb(&mut self, other: &DnnfManager) -> Vec<Dnnf> {
        let mut map: Vec<Dnnf> = Vec::with_capacity(other.nodes.len());
        map.push(Dnnf::TRUE);
        map.push(Dnnf::FALSE);
        for node in &other.nodes[2..] {
            let mapped = match node {
                DnnfNode::Const(b) => {
                    if *b {
                        Dnnf::TRUE
                    } else {
                        Dnnf::FALSE
                    }
                }
                DnnfNode::Lit { var, positive } => self.lit(*var, *positive),
                DnnfNode::And(cs) | DnnfNode::Or(cs) => {
                    let mut cs: Vec<Dnnf> = cs.iter().map(|&c| map[c.index()]).collect();
                    cs.sort_unstable();
                    let remapped = match node {
                        DnnfNode::And(_) => DnnfNode::And(cs.into_boxed_slice()),
                        _ => DnnfNode::Or(cs.into_boxed_slice()),
                    };
                    self.intern(remapped)
                }
            };
            map.push(mapped);
        }
        map
    }
}

/// Options for d-DNNF compilation.
#[derive(Debug, Clone, Default)]
pub struct DnnfOptions {
    /// Decision-variable order heuristic (shared with the other
    /// engines). d-DNNF has no global ordering constraint — the order
    /// only picks which undetermined variable each decision branches on.
    pub order: VarOrder,
    /// Worker threads for target fan-out and parallel WMC. `0` (the
    /// default) means *auto*: honour the `ENFRAME_WORKERS` environment
    /// variable, else run sequentially. Any worker count produces
    /// bitwise-identical probabilities: expansion is a pure function of
    /// the residual state, so every target compiles to the same sentence
    /// regardless of which worker compiles it, and weighted model
    /// counting reduces children in a canonical order.
    pub workers: usize,
    /// Resource budget for the compilation. Unlimited by default (all
    /// checks short-circuit); on exhaustion the compile returns
    /// [`ObddError::BudgetExceeded`] instead of hanging or OOMing.
    pub budget: Budget,
}

/// Compilation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DnnfStats {
    /// Stored d-DNNF nodes after compiling all targets (constants
    /// excluded).
    pub nodes: usize,
    /// Total child edges over all `And`/`Or` nodes.
    pub edges: usize,
    /// Nodes reachable from the largest single target.
    pub largest_target: usize,
    /// Expansion steps: residual states actually expanded (memo misses).
    /// The direct analogue of the Shannon path's `cmp_branches` — the
    /// headline number the DP collapses.
    pub expansion_steps: u64,
    /// Residual states answered from the memo instead of re-expanded.
    pub memo_hits: u64,
}

/// A compiled network: one d-DNNF sentence per target over a shared
/// hash-consed store. Compile once; every probability query afterwards
/// is one linear pass over the union DAG ([`wmc`]).
#[derive(Debug)]
pub struct DnnfEngine {
    man: DnnfManager,
    targets: Vec<Dnnf>,
    names: Vec<String>,
    stats: DnnfStats,
    /// Effective worker count, reused by probability queries.
    workers: usize,
}

/// Below this store size a parallel WMC query falls back to the
/// sequential sweep: thread startup costs more than the count.
const PAR_WMC_MIN_NODES: usize = 256;

impl DnnfEngine {
    /// Compiles every registered target of `net` into d-DNNF.
    ///
    /// With `opts.workers` resolved to more than one (explicitly or via
    /// `ENFRAME_WORKERS`), targets fan out across a worker pool: each
    /// worker compiles whole targets with its own manager and
    /// residual-state memo over the shared immutable network, and the
    /// per-worker stores are merged by [`DnnfManager::absorb`]. The
    /// compiled sentences — and therefore all probabilities — are
    /// identical to a sequential compile for every worker count.
    pub fn compile(net: &Network, opts: &DnnfOptions) -> Result<Self, ObddError> {
        let scope = BudgetScope::new(opts.budget);
        let result = Self::compile_scoped(net, opts, &scope);
        telemetry::count_n(Counter::BudgetCheck, scope.checks());
        if scope.is_cancelled() {
            telemetry::count(Counter::Cancellation);
        }
        result
    }

    fn compile_scoped(
        net: &Network,
        opts: &DnnfOptions,
        scope: &BudgetScope,
    ) -> Result<Self, ObddError> {
        let workers = enframe_core::workers::resolve(opts.workers, 1);
        if workers <= 1 || net.targets.len() <= 1 {
            return Self::compile_seq(net, opts, workers, scope);
        }
        Self::compile_par(net, opts, workers, scope)
    }

    fn compile_seq(
        net: &Network,
        opts: &DnnfOptions,
        workers: usize,
        scope: &BudgetScope,
    ) -> Result<Self, ObddError> {
        let mut man = DnnfManager::new();
        let mut compiler = Compiler::new(net, opts, scope.clone());
        compiler.prime()?;
        let mut targets = Vec::with_capacity(net.targets.len());
        for &t in &net.targets {
            targets.push(compiler.compile(&mut man, t)?);
        }
        let stats = DnnfStats {
            nodes: man.len() - 2,
            edges: man.edges(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            expansion_steps: compiler.expansion_steps,
            memo_hits: compiler.memo_hits,
        };
        Ok(DnnfEngine {
            man,
            targets,
            names: net.target_names.clone(),
            stats,
            workers,
        })
    }

    /// Parallel target fan-out. Target indices are pre-queued in a
    /// bounded channel whose sender is dropped before the workers start,
    /// so the pool drains the queue and shuts down on disconnect — the
    /// semantics the `crossbeam` shim's disconnected-while-nonempty
    /// behaviour guarantees.
    fn compile_par(
        net: &Network,
        opts: &DnnfOptions,
        workers: usize,
        scope: &BudgetScope,
    ) -> Result<Self, ObddError> {
        struct WorkerOut {
            man: DnnfManager,
            compiled: Vec<(usize, Dnnf)>,
            error: Option<(usize, ObddError)>,
            steps: u64,
            hits: u64,
        }
        let workers = workers.min(net.targets.len());
        let (tx, rx) = crossbeam::channel::bounded(net.targets.len());
        for i in 0..net.targets.len() {
            tx.send(i).expect("queue receiver alive");
        }
        drop(tx);
        let outs: Vec<WorkerOut> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let rx = rx.clone();
                    let scope = scope.clone();
                    s.spawn(move || {
                        let _worker = telemetry::worker_span(Phase::Worker, w);
                        // Panic isolation — see `ObddEngine::compile_par`.
                        let current = std::cell::Cell::new(0usize);
                        let body = catch_unwind(AssertUnwindSafe(|| {
                            let mut man = DnnfManager::new();
                            let mut compiler = Compiler::new(net, opts, scope.clone());
                            let mut compiled = Vec::new();
                            let mut error = None;
                            if let Err(e) = compiler.prime() {
                                scope.cancel_external();
                                error = Some((0, e));
                            } else {
                                while let Some(i) = recv_next(&rx, &scope) {
                                    current.set(i);
                                    if failpoint::hit(Site::Spawn) {
                                        panic!("injected worker panic (failpoint `spawn`)");
                                    }
                                    match compiler.compile(&mut man, net.targets[i]) {
                                        Ok(d) => compiled.push((i, d)),
                                        Err(e) => {
                                            // Stop this worker (the
                                            // evaluator's assignment may
                                            // be dirty) and its siblings.
                                            scope.cancel_external();
                                            error = Some((i, e));
                                            break;
                                        }
                                    }
                                }
                            }
                            WorkerOut {
                                man,
                                compiled,
                                error,
                                steps: compiler.expansion_steps,
                                hits: compiler.memo_hits,
                            }
                        }));
                        body.unwrap_or_else(|payload| {
                            scope.cancel_external();
                            telemetry::count(Counter::Cancellation);
                            let target = current.get();
                            WorkerOut {
                                man: DnnfManager::new(),
                                compiled: Vec::new(),
                                error: Some((
                                    target,
                                    ObddError::WorkerPanicked {
                                        target,
                                        message: panic_message(payload),
                                    },
                                )),
                                steps: 0,
                                hits: 0,
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("worker panics are caught inside the closure")
                })
                .collect()
        })
        .expect("worker panics are caught inside the closure");

        // Report the first real failure, deterministically across
        // schedules; cancellation echoes from sibling workers lose.
        if let Some((_, e)) = first_worker_error(outs.iter().filter_map(|w| w.error.as_ref())) {
            return Err(e.clone());
        }
        let _merge = telemetry::span(Phase::Merge);
        if failpoint::hit(Site::Merge) {
            return Err(ObddError::Injected("merge"));
        }
        let mut man = DnnfManager::new();
        let mut targets: Vec<Option<Dnnf>> = vec![None; net.targets.len()];
        let mut steps = 0u64;
        let mut hits = 0u64;
        for w in &outs {
            let map = man.absorb(&w.man);
            for &(i, d) in &w.compiled {
                targets[i] = Some(map[d.index()]);
            }
            steps += w.steps;
            hits += w.hits;
        }
        // Holes mean a cancellation stopped the pool before every target
        // compiled; surface the recorded verdict.
        let targets: Vec<Dnnf> =
            targets
                .into_iter()
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| {
                    ObddError::from(scope.verdict().unwrap_or(Exceeded {
                        resource: Resource::Cancelled,
                        spent: 0,
                    }))
                })?;
        let stats = DnnfStats {
            nodes: man.len() - 2,
            edges: man.edges(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            expansion_steps: steps,
            memo_hits: hits,
        };
        Ok(DnnfEngine {
            man,
            targets,
            names: net.target_names.clone(),
            stats,
            workers,
        })
    }

    /// Reassembles an engine from deserialised parts (artifact load).
    /// `man` should come from [`DnnfManager::from_nodes`] so the node
    /// array is already structurally valid; this checks the target
    /// handles and recomputes the size statistics (`expansion_steps` and
    /// `memo_hits` are compile-time quantities — a loaded artifact
    /// reports 0 for both). `workers` follows the same resolution rule
    /// as [`DnnfOptions::workers`].
    pub fn from_parts(
        man: DnnfManager,
        targets: Vec<Dnnf>,
        names: Vec<String>,
        workers: usize,
    ) -> Result<DnnfEngine, String> {
        if let Some(t) = targets.iter().find(|t| t.index() >= man.len()) {
            return Err(format!("target handle {} out of range", t.index()));
        }
        if names.len() != targets.len() {
            return Err(format!(
                "{} target names for {} targets",
                names.len(),
                targets.len()
            ));
        }
        let stats = DnnfStats {
            nodes: man.len() - 2,
            edges: man.edges(),
            largest_target: targets.iter().map(|&t| man.size(t)).max().unwrap_or(0),
            expansion_steps: 0,
            memo_hits: 0,
        };
        Ok(DnnfEngine {
            man,
            targets,
            names,
            stats,
            workers: enframe_core::workers::resolve(workers, 1),
        })
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &DnnfStats {
        &self.stats
    }

    /// The shared node store.
    pub fn manager(&self) -> &DnnfManager {
        &self.man
    }

    /// The compiled sentence of target `i`.
    pub fn target(&self, i: usize) -> Dnnf {
        self.targets[i]
    }

    /// Target names, parallel to the probability vectors.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of compiled targets.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Exact probability of every target: one single-pass weighted model
    /// count over the union DAG (products across `And` children, sums
    /// across `Or` children). With more than one worker configured and a
    /// store large enough to amortise thread startup, the sweep runs
    /// data-parallel ([`wmc::node_probabilities_par`]) — bitwise-equal
    /// to the sequential sweep by construction.
    ///
    /// # Panics
    /// Panics if `vt` does not cover the compiled variables.
    pub fn probabilities(&self, vt: &VarTable) -> Vec<f64> {
        self.try_probabilities(vt, &BudgetScope::unlimited())
            .expect("unlimited scope cannot exceed a budget")
    }

    /// [`Self::probabilities`] under a budget: the WMC sweep checkpoints
    /// `scope` (per level when parallel, every few thousand nodes when
    /// sequential) and returns [`ObddError::BudgetExceeded`] instead of
    /// finishing if the budget runs out mid-sweep.
    ///
    /// # Panics
    /// Panics if `vt` does not cover the compiled variables.
    pub fn try_probabilities(
        &self,
        vt: &VarTable,
        scope: &BudgetScope,
    ) -> Result<Vec<f64>, ObddError> {
        let _span = telemetry::span(Phase::Wmc);
        let wmc_workers = if self.man.len() >= PAR_WMC_MIN_NODES {
            self.workers
        } else {
            1
        };
        let probs = wmc::node_probabilities_par_scoped(&self.man, vt, wmc_workers, scope)?;
        Ok(self.targets.iter().map(|&t| probs[t.index()]).collect())
    }
}

// ---------------------------------------------------------------------
// The compiler: residual-state memoised expansion.
// ---------------------------------------------------------------------

/// Token tags of the residual key (high 4 bits of each `u64`).
mod tok {
    /// A block item: `(node << 1 | polarity)`.
    pub const ITEM: u64 = 1 << 60;
    /// Entering an undetermined node (operand: network node id).
    pub const OPEN: u64 = 2 << 60;
    /// Leaving an undetermined node.
    pub const CLOSE: u64 = 3 << 60;
    /// Repeat visit of a shared undetermined node (operand: node id).
    pub const REF: u64 = 4 << 60;
    /// A forced Boolean (operand: 0/1).
    pub const BOOL: u64 = 5 << 60;
    /// A forced scalar; the next token is its raw bit pattern.
    pub const NUM: u64 = 6 << 60;
    /// The forced undefined value `u`.
    pub const UNDEF: u64 = 7 << 60;
    /// A forced point (operand: dimension); followed by one raw-bits
    /// token per coordinate.
    pub const POINT: u64 = 8 << 60;
}

fn push_value(key: &mut Vec<u64>, v: &Value) {
    match v {
        Value::Undef => key.push(tok::UNDEF),
        Value::Num(x) => {
            key.push(tok::NUM);
            key.push(x.to_bits());
        }
        Value::Point(p) => {
            key.push(tok::POINT | p.len() as u64);
            key.extend(p.iter().map(|x| x.to_bits()));
        }
    }
}

/// A conjunction of network nodes with polarities — the unit of
/// compilation. `false` polarity means the item must be *violated*.
type Item = (NodeId, bool);

struct Compiler<'n> {
    net: &'n Network,
    /// Shared three-valued evaluator (assignment + per-node scratch).
    eval: Evaluator<'n>,
    /// Decision rank per variable (lower ranks decided first), from the
    /// configured [`VarOrder`] heuristic.
    rank_of: Vec<u32>,
    /// The DP memo: residual key → compiled sentence. Keys capture the
    /// full residual state, and every expansion is a *pure function* of
    /// that state (decisions, component factoring, and sub-states are
    /// all derived from the residual walk, never from the assignment
    /// prefix), so entries are valid under any prefix that reaches them
    /// — including prefixes from *other targets* — and memoisation never
    /// changes the compiled sentence, only skips rebuilding it. This
    /// purity is what makes parallel fan-out deterministic: any
    /// partitioning of targets over per-worker memos yields the same
    /// sentences.
    memo: FxHashMap<Box<[u64]>, Dnnf>,
    /// Visited stamps for subtree and key traversals.
    seen: VisitStamp,
    /// Which item of the current block's key walk first opened each
    /// network node (valid for nodes visited under the current `seen`
    /// stamp only): lets a repeat visit from another item union the two
    /// items' components without re-walking the shared sub-DAG.
    opened_by: Vec<u32>,
    expansion_steps: u64,
    memo_hits: u64,
    /// Shared budget/cancellation state, checked once per expansion step
    /// (memo misses — the quantity that grows on hard instances; memo
    /// hits are O(key) and bounded by misses).
    scope: BudgetScope,
}

impl<'n> Compiler<'n> {
    fn new(net: &'n Network, opts: &DnnfOptions, scope: BudgetScope) -> Self {
        let order = static_order(net, opts.order);
        let mut rank_of = vec![u32::MAX; net.n_vars as usize];
        for (i, v) in order.iter().enumerate() {
            rank_of[v.index()] = i as u32;
        }
        Compiler {
            net,
            eval: Evaluator::new(net, scope.clone()),
            rank_of,
            memo: FxHashMap::default(),
            seen: VisitStamp::new(net.len()),
            opened_by: vec![0; net.len()],
            expansion_steps: 0,
            memo_hits: 0,
            scope,
        }
    }

    /// Evaluates the whole network once under the empty assignment;
    /// every later re-evaluation is an upward delta from one variable.
    fn prime(&mut self) -> Result<(), ObddError> {
        self.eval.prime()
    }

    fn compile(&mut self, man: &mut DnnfManager, root: NodeId) -> Result<Dnnf, ObddError> {
        let _span = telemetry::span(Phase::DnnfExpand);
        if !self.net.node(root).is_bool() {
            return Err(ObddError::Unsupported(format!(
                "numeric node {} cannot be a Boolean compilation root",
                self.net.node(root).kind.label()
            )));
        }
        // Restrict delta propagation to this target's cone: assignments
        // made while expanding it cannot affect any value the expansion
        // reads outside the cone, and the assignment is empty again by
        // the time the next target restricts.
        self.seen.reset();
        let mut cone: Vec<NodeId> = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if self.seen.visit(n) {
                continue;
            }
            cone.push(n);
            stack.extend(self.net.node(n).children.iter().copied());
        }
        self.eval.restrict_to(&cone);
        self.compile_block(man, vec![(root, true)])
    }

    /// Compiles the conjunction of `items` under the evaluator's current
    /// assignment (kept current incrementally — see [`Evaluator::assign_monotone`]).
    fn compile_block(
        &mut self,
        man: &mut DnnfManager,
        items: Vec<Item>,
    ) -> Result<Dnnf, ObddError> {
        // Normalise: decided items drop out (or refute the block),
        // conjunctive structure flattens into more items.
        let mut norm: Vec<Item> = Vec::new();
        let mut stack = items;
        while let Some((id, pol)) = stack.pop() {
            match self.eval.value(id) {
                Partial::B(b) => {
                    if *b != pol {
                        return Ok(Dnnf::FALSE);
                    }
                }
                Partial::V(_) => {
                    return Err(ObddError::Unsupported(format!(
                        "numeric node {} inside Boolean structure",
                        self.net.node(id).kind.label()
                    )))
                }
                Partial::Unknown => match &self.net.node(id).kind {
                    NodeKind::Not => stack.push((self.net.node(id).children[0], !pol)),
                    NodeKind::And if pol => {
                        stack.extend(self.net.node(id).children.iter().map(|&c| (c, true)))
                    }
                    NodeKind::Or if !pol => {
                        stack.extend(self.net.node(id).children.iter().map(|&c| (c, false)))
                    }
                    NodeKind::Var(_) | NodeKind::And | NodeKind::Or | NodeKind::Cmp(_) => {
                        norm.push((id, pol))
                    }
                    NodeKind::LoopIn { .. } => return Err(loop_in_unsupported()),
                    other => {
                        return Err(ObddError::Unsupported(format!(
                            "numeric node {} inside Boolean structure",
                            other.label()
                        )))
                    }
                },
            }
        }
        norm.sort_unstable();
        norm.dedup();
        if norm.is_empty() {
            return Ok(Dnnf::TRUE);
        }
        // A contradictory pair (n, true) and (n, false).
        if norm.windows(2).any(|w| w[0].0 == w[1].0) {
            return Ok(Dnnf::FALSE);
        }

        // The residual key: the items, then the three-valued frontier of
        // their undetermined cones. One shared walk per block — repeat
        // visits of shared sub-DAGs (within and across items) emit a
        // `REF` token instead of re-walking, so the walk is linear in
        // the undetermined cone's edges.
        let mut key: Vec<u64> = Vec::with_capacity(norm.len() * 8);
        for &(n, pol) in &norm {
            key.push(tok::ITEM | (n.0 as u64) << 1 | pol as u64);
        }
        let mut support: Vec<Var> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(norm.len());
        let mut links: Vec<(usize, usize)> = Vec::new();
        self.seen.reset();
        for (item, &(n, _)) in norm.iter().enumerate() {
            let start = support.len();
            self.residual_key(n, &mut key, &mut support, item, &mut links);
            ranges.push((start, support.len()));
        }

        if let Some(&hit) = self.memo.get(key.as_slice()) {
            self.memo_hits += 1;
            telemetry::count(Counter::MemoHit);
            return Ok(hit);
        }
        self.expansion_steps += 1;
        telemetry::count(Counter::MemoMiss);
        // One budget step per fresh expansion, plus the node-count limit
        // against the store (bytes are proportional at ~20 B/node).
        self.scope.check_steps(1)?;
        if self.scope.is_limited() {
            let nodes = man.len();
            self.scope.check_usage(nodes, nodes * 20)?;
        }
        if failpoint::hit(Site::Alloc) {
            return Err(ObddError::Injected("alloc"));
        }

        // Decomposable-AND factoring: group items whose *residual*
        // supports are connected, read straight off the key walk (a
        // shared undetermined sub-DAG links its items via `REF`, a
        // shared variable reached through distinct nodes links them via
        // the collected supports). Using the residual state — not the
        // assignment prefix — keeps the expansion a pure function of the
        // state, the invariant the memo and the parallel fan-out rely
        // on, and factors strictly more finely than a static
        // over-approximation would.
        let groups = components(norm.len(), &support, &ranges, &links);
        let result = if groups.iter().max().copied().unwrap_or(0) > 0 {
            let n_groups = groups.iter().max().unwrap() + 1;
            let mut parts = Vec::with_capacity(n_groups);
            for g in 0..n_groups {
                let sub: Vec<Item> = norm
                    .iter()
                    .zip(&groups)
                    .filter(|&(_, &gi)| gi == g)
                    .map(|(&it, _)| it)
                    .collect();
                parts.push(self.compile_block(man, sub)?);
            }
            man.and(parts)
        } else if let [(id, pol)] = norm[..] {
            if let NodeKind::Var(v) = self.net.node(id).kind {
                man.lit(v, pol)
            } else {
                self.decide(man, &norm, &support)?
            }
        } else {
            self.decide(man, &norm, &support)?
        };

        self.memo.insert(key.into_boxed_slice(), result);
        Ok(result)
    }

    /// Expands one decision on the best-ranked undetermined variable and
    /// recurses into both branches.
    fn decide(
        &mut self,
        man: &mut DnnfManager,
        norm: &[Item],
        support: &[Var],
    ) -> Result<Dnnf, ObddError> {
        let &v = support
            .iter()
            .min_by_key(|v| self.rank_of[v.index()])
            .ok_or_else(|| {
                ObddError::Unsupported("undetermined block with empty residual support".into())
            })?;
        let mark = self.eval.assign_monotone(v, true)?;
        let hi = self.compile_block(man, norm.to_vec());
        self.eval.undo_to(mark, v);
        let lo = hi.and_then(|hi| {
            let mark = self.eval.assign_monotone(v, false)?;
            let lo = self.compile_block(man, norm.to_vec());
            self.eval.undo_to(mark, v);
            lo.map(|lo| (hi, lo))
        });
        let (hi, lo) = lo?;
        Ok(man.decision(v, hi, lo))
    }

    /// Emits the residual state of `root`'s undetermined cone into `key`
    /// and collects its undetermined support into `support`; `item` is
    /// the block item being walked, and a repeat visit of a node first
    /// opened under another item records an `(item, opener)` edge in
    /// `links` for component analysis.
    ///
    /// The walk descends only *undetermined* nodes. Determined children
    /// contribute their forced value — except under `And`/`Or`, where an
    /// undetermined parent forces them (all-true / all-false) and they
    /// carry no information, and under `Sum`/`Prod`, where they fold into
    /// one **accumulated partial value** (the partial-sum DP: branches
    /// that force the same children to the same accumulated value share
    /// their continuation regardless of the assignment that got there).
    /// Shared nodes repeat as [`tok::REF`] — within one key the repeat
    /// has the same residual by construction.
    fn residual_key(
        &mut self,
        root: NodeId,
        key: &mut Vec<u64>,
        support: &mut Vec<Var>,
        item: usize,
        links: &mut Vec<(usize, usize)>,
    ) {
        match self.eval.value(root) {
            Partial::B(b) => {
                key.push(tok::BOOL | *b as u64);
                return;
            }
            Partial::V(v) => {
                // Clone: `push_value` only reads, but the borrow checker
                // cannot see through `self.eval` while `self` recurses.
                let v = v.clone();
                push_value(key, &v);
                return;
            }
            Partial::Unknown => {}
        }
        if self.seen.visit(root) {
            key.push(tok::REF | root.0 as u64);
            let opener = self.opened_by[root.index()] as usize;
            if opener != item {
                links.push((item, opener));
            }
            return;
        }
        self.opened_by[root.index()] = item as u32;
        key.push(tok::OPEN | root.0 as u64);
        let node = self.net.node(root);
        match &node.kind {
            NodeKind::Var(v) => support.push(*v),
            NodeKind::And | NodeKind::Or => {
                // Determined children are forced (true under an
                // undetermined And, false under an undetermined Or):
                // only the undetermined ones carry state.
                for i in 0..node.children.len() {
                    let c = self.net.node(root).children[i];
                    if matches!(self.eval.value(c), Partial::Unknown) {
                        self.residual_key(c, key, support, item, links);
                    }
                }
            }
            NodeKind::Sum | NodeKind::Prod => {
                // Fold the forced children into one accumulated partial
                // value, in child order (undefined summands are the
                // additive identity; an undefined factor would have
                // determined the product already).
                let is_sum = matches!(node.kind, NodeKind::Sum);
                let mut acc = if is_sum {
                    Value::Undef
                } else {
                    Value::Num(1.0)
                };
                for i in 0..self.net.node(root).children.len() {
                    let c = self.net.node(root).children[i];
                    if let Partial::V(v) = self.eval.value(c) {
                        let v = v.clone();
                        acc = if is_sum {
                            acc.add(&v).expect("partial eval already typed this sum")
                        } else {
                            acc.mul(&v)
                                .expect("partial eval already typed this product")
                        };
                    }
                }
                push_value(key, &acc);
                for i in 0..self.net.node(root).children.len() {
                    let c = self.net.node(root).children[i];
                    if matches!(self.eval.value(c), Partial::Unknown) {
                        self.residual_key(c, key, support, item, links);
                    }
                }
            }
            _ => {
                // Every other connective: recurse into all children
                // (determined ones emit their forced value — e.g. the
                // decided side of a half-determined comparison).
                for i in 0..self.net.node(root).children.len() {
                    let c = self.net.node(root).children[i];
                    self.residual_key(c, key, support, item, links);
                }
            }
        }
        key.push(tok::CLOSE);
    }
}

/// Partitions a block's items into connected components of shared
/// *residual* support: `result[i]` is the component index of item `i`,
/// numbered contiguously from 0 in item order. `support`/`ranges` hold
/// each item's variables as collected by its portion of the key walk,
/// and `links` the item pairs joined by a shared undetermined sub-DAG
/// (whose variables were collected under the opening item only). Both
/// inputs are functions of the residual state alone, so the grouping —
/// and with it the compiled structure — is prefix-independent.
fn components(
    n_items: usize,
    support: &[Var],
    ranges: &[(usize, usize)],
    links: &[(usize, usize)],
) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n_items).collect();
    for &(a, b) in links {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
    }
    // Distinct network nodes can mention the same variable, so shared
    // variables union items even without a shared sub-DAG.
    let mut var_owner: FxHashMap<u32, usize> = FxHashMap::default();
    for (i, &(start, end)) in ranges.iter().enumerate() {
        for v in &support[start..end] {
            match var_owner.entry(v.0) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, *o.get()));
                    parent[ra] = rb;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                }
            }
        }
    }
    let mut label: FxHashMap<usize, usize> = FxHashMap::default();
    let mut out = Vec::with_capacity(n_items);
    for i in 0..n_items {
        let r = find(&mut parent, i);
        let next = label.len();
        out.push(*label.entry(r).or_insert(next));
    }
    out
}

/// Path-halving find for the tiny per-block union-find.
fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::{space, Program};

    fn engine_for(p: &Program) -> (DnnfEngine, Vec<f64>, VarTable) {
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::new((0..g.n_vars).map(|i| 0.3 + 0.05 * i as f64).collect());
        let want = space::target_probabilities(&g, &vt);
        let engine = DnnfEngine::compile(&net, &DnnfOptions::default()).unwrap();
        (engine, want, vt)
    }

    #[test]
    fn propositional_probabilities_match_enumeration() {
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let z = p.fresh_var();
        let e1 = p.declare_event(
            "E1",
            Program::or([
                Program::and([Program::var(x), Program::nvar(y)]),
                Program::var(z),
            ]),
        );
        let e2 = p.declare_event("E2", Program::not(Program::eref(e1.clone())));
        p.add_target(e1);
        p.add_target(e2);
        let (engine, want, vt) = engine_for(&p);
        let got = engine.probabilities(&vt);
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
        assert!((got[0] + got[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_conjunction_factors_into_decomposable_and() {
        // (x0 ∨ x1) ∧ (x2 ∨ x3) ∧ x4: three variable-disjoint conjuncts
        // must become one AND node over independently compiled parts —
        // no decision interleaving across them.
        let mut p = Program::new();
        let vars: Vec<Var> = (0..5).map(|_| p.fresh_var()).collect();
        let e = p.declare_event(
            "E",
            Program::and([
                Program::or([Program::var(vars[0]), Program::var(vars[1])]),
                Program::or([Program::var(vars[2]), Program::var(vars[3])]),
                Program::var(vars[4]),
            ]),
        );
        p.add_target(e);
        let (engine, want, vt) = engine_for(&p);
        let got = engine.probabilities(&vt);
        assert!((got[0] - want[0]).abs() < 1e-12);
        let root = engine.target(0);
        let DnnfNode::And(parts) = engine.manager().node(root) else {
            panic!("root must be a decomposable AND, got {root:?}");
        };
        assert_eq!(parts.len(), 3);
        // Factored compilation: each disjunct costs at most its own
        // decision tree (2 states) plus the literal conjunct — far fewer
        // states than the 2^5 interleaved expansion.
        assert!(
            engine.stats().expansion_steps <= 8,
            "expected factored expansion, took {} steps",
            engine.stats().expansion_steps
        );
    }

    #[test]
    fn mutex_chain_is_linear_in_states() {
        // Φⱼ = ¬x₀ ∧ … ∧ xⱼ over k variables: every target is read-once,
        // so expansion states stay O(k) per target.
        let k = 24;
        let mut p = Program::new();
        let vars: Vec<Var> = (0..k).map(|_| p.fresh_var()).collect();
        for j in 0..k {
            let mut conj: Vec<_> = vars[..j].iter().map(|&x| Program::nvar(x)).collect();
            conj.push(Program::var(vars[j]));
            let e = p.declare_event(&format!("Phi{j}"), Program::and(conj));
            p.add_target(e);
        }
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let engine = DnnfEngine::compile(&net, &DnnfOptions::default()).unwrap();
        let vt = VarTable::new((0..k).map(|i| 0.3 + 0.01 * i as f64).collect());
        let got = engine.probabilities(&vt);
        for j in 0..k {
            let mut want = vt.prob(Var(j as u32));
            for i in 0..j {
                want *= 1.0 - vt.prob(Var(i as u32));
            }
            assert!((got[j] - want).abs() < 1e-12, "target {j}");
        }
        let steps = engine.stats().expansion_steps;
        assert!(
            steps as usize <= 4 * k * k,
            "mutex chains must stay polynomial: {steps} states for k={k}"
        );
    }

    #[test]
    fn comparison_atom_collapses_onto_partial_sums() {
        use enframe_core::program::{SymCVal, SymEvent, ValSrc};
        use enframe_core::{CmpOp, Value};
        use std::rc::Rc;
        // E = [Σᵢ xᵢ⊗1 ≥ t]: a cardinality constraint. The Shannon tree
        // has 2^n undecided prefixes; the partial-sum DP has O(n·t)
        // states — the textbook collapse this module exists for.
        let n = 12;
        let t = 6.0;
        let mut p = Program::new();
        let vars: Vec<_> = (0..n).map(|_| p.fresh_var()).collect();
        let sum = Rc::new(SymCVal::Sum(
            vars.iter()
                .map(|&v| {
                    Rc::new(SymCVal::Cond(
                        Program::var(v),
                        ValSrc::Const(Value::Num(1.0)),
                    ))
                })
                .collect(),
        ));
        let e = p.declare_event(
            "E",
            Rc::new(SymEvent::Atom(
                CmpOp::Ge,
                sum,
                Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(t)))),
            )),
        );
        p.add_target(e);
        let (engine, want, vt) = engine_for(&p);
        let got = engine.probabilities(&vt);
        assert!((got[0] - want[0]).abs() < 1e-12);
        let steps = engine.stats().expansion_steps;
        assert!(
            steps <= (n as u64 + 1) * (t as u64 + 2),
            "cardinality atom must be a polynomial DP: {steps} states for n={n}, t={t}"
        );
    }

    #[test]
    fn shared_events_are_compiled_once_across_targets() {
        // Two targets over the same sub-event: the residual-state memo is
        // global, so the second target's expansion reuses the first's
        // states wholesale.
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let z = p.fresh_var();
        let shared = p.declare_event(
            "S",
            Program::or([
                Program::var(x),
                Program::and([Program::var(y), Program::var(z)]),
            ]),
        );
        let e1 = p.declare_event("E1", Program::eref(shared.clone()));
        let e2 = p.declare_event("E2", Program::not(Program::eref(shared)));
        p.add_target(e1);
        p.add_target(e2);
        let (engine, want, vt) = engine_for(&p);
        let got = engine.probabilities(&vt);
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-12, "target {i}");
        }
        assert!((got[0] + got[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_order_heuristic_gives_the_same_probabilities() {
        let mut p = Program::new();
        let vars: Vec<Var> = (0..6).map(|_| p.fresh_var()).collect();
        let e = p.declare_event(
            "E",
            Program::or(
                vars.chunks(2)
                    .map(|w| Program::and([Program::var(w[0]), Program::nvar(w[1])])),
            ),
        );
        p.add_target(e);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::uniform(6, 0.4);
        let want = space::target_probabilities(&g, &vt);
        for order in [
            VarOrder::Sequential,
            VarOrder::StaticOccurrence,
            VarOrder::Dynamic,
        ] {
            let engine = DnnfEngine::compile(
                &net,
                &DnnfOptions {
                    order,
                    ..DnnfOptions::default()
                },
            )
            .unwrap();
            let got = engine.probabilities(&vt);
            assert!((got[0] - want[0]).abs() < 1e-12, "{order:?}");
        }
    }

    #[test]
    fn manager_invariants() {
        let mut man = DnnfManager::new();
        let a = man.lit(Var(0), true);
        let b = man.lit(Var(0), true);
        assert_eq!(a, b, "literals hash-cons");
        let c = man.lit(Var(1), true);
        let ab = man.and([a, c]);
        let ba = man.and([c, a]);
        assert_eq!(ab, ba, "AND is canonical up to child order");
        assert_eq!(man.and([a, Dnnf::TRUE]), a);
        assert_eq!(man.and([a, Dnnf::FALSE]), Dnnf::FALSE);
        assert_eq!(
            man.decision(Var(2), ab, ab),
            ab,
            "redundant decisions vanish"
        );
        assert_eq!(
            man.decision(Var(2), Dnnf::TRUE, Dnnf::FALSE),
            man.lit(Var(2), true)
        );
        let d = man.decision(Var(2), ab, Dnnf::FALSE);
        // (x2 ∧ x0 ∧ x1): the false branch drops out of the OR.
        assert!(matches!(man.node(d), DnnfNode::And(cs) if cs.len() == 3));
        assert!(man.eval(d, &|_| true));
        assert!(!man.eval(d, &|v| v != Var(2)));
    }
}
