//! Markov Clustering (MCL) — paper Figure 3 and van Dongen's thesis \[36\].
//!
//! MCL simulates stochastic flow in a graph by alternating *expansion*
//! (matrix self-multiplication: `N = M · M`) and *inflation* (entry-wise
//! Hadamard power followed by rescaling). The paper's user program
//! normalises along `k` in `M[i][j] = N[i][j]^r / Σ_k N[i][k]^r`; we follow
//! the program (row-stochastic convention).

use std::collections::VecDeque;

/// Parameters of an MCL run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclParams {
    /// Hadamard (inflation) power `r`.
    pub r: i32,
    /// Number of expansion+inflation iterations.
    pub iterations: usize,
    /// Entries below this threshold are treated as zero when extracting
    /// clusters.
    pub threshold: f64,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            r: 2,
            iterations: 10,
            threshold: 1e-6,
        }
    }
}

/// Result of an MCL run.
#[derive(Debug, Clone, PartialEq)]
pub struct MclResult {
    /// The final flow matrix (row-major, `n × n`).
    pub matrix: Vec<Vec<f64>>,
    /// Extracted clusters: each is a sorted list of node indices. Nodes can
    /// appear in multiple clusters only in degenerate overlaps; here
    /// overlaps are merged.
    pub clusters: Vec<Vec<usize>>,
}

/// Normalises each row of `m` to sum to 1 (rows summing to 0 are left
/// untouched).
pub fn row_normalise(m: &mut [Vec<f64>]) {
    for row in m.iter_mut() {
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            for x in row.iter_mut() {
                *x /= s;
            }
        }
    }
}

/// One expansion step: `N = M · M`.
fn expand(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut out = vec![vec![0.0; n]; n];
    for (i, row) in m.iter().enumerate() {
        for (k, &mik) in row.iter().enumerate() {
            if mik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += mik * m[k][j];
            }
        }
    }
    out
}

/// One inflation step: `M[i][j] = N[i][j]^r / Σ_k N[i][k]^r`.
fn inflate(n_mat: &[Vec<f64>], r: i32) -> Vec<Vec<f64>> {
    n_mat
        .iter()
        .map(|row| {
            let powed: Vec<f64> = row.iter().map(|x| x.powi(r)).collect();
            let s: f64 = powed.iter().sum();
            if s == 0.0 {
                powed
            } else {
                powed.iter().map(|x| x / s).collect()
            }
        })
        .collect()
}

/// Runs MCL on an adjacency/weight matrix (need not be normalised; it is
/// row-normalised first). Self-loops are added with the row-maximum weight,
/// the standard regularisation from van Dongen's thesis.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn mcl(weights: &[Vec<f64>], params: MclParams) -> MclResult {
    let n = weights.len();
    for row in weights {
        assert_eq!(row.len(), n, "adjacency matrix must be square");
    }
    let mut m: Vec<Vec<f64>> = weights.to_vec();
    // Self-loop regularisation.
    for (i, row) in m.iter_mut().enumerate() {
        let mx = row.iter().cloned().fold(0.0, f64::max);
        row[i] = if mx > 0.0 { mx } else { 1.0 };
    }
    row_normalise(&mut m);
    for _ in 0..params.iterations {
        let expanded = expand(&m);
        m = inflate(&expanded, params.r);
    }
    let clusters = extract_clusters(&m, params.threshold);
    MclResult {
        matrix: m,
        clusters,
    }
}

/// Extracts clusters: builds an undirected support graph over entries above
/// `threshold` and returns its connected components (sorted, deterministic).
fn extract_clusters(m: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let n = m.len();
    let mut seen = vec![false; n];
    let mut clusters = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = vec![];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for v in 0..n {
                if !seen[v] && (m[u][v] > threshold || m[v][u] > threshold) {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        clusters.push(comp);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles connected by a single weak edge.
    fn two_triangles() -> Vec<Vec<f64>> {
        let mut w = vec![vec![0.0; 6]; 6];
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            w[a][b] = 1.0;
            w[b][a] = 1.0;
        }
        w[2][3] = 0.1;
        w[3][2] = 0.1;
        w
    }

    #[test]
    fn splits_two_triangles() {
        let res = mcl(&two_triangles(), MclParams::default());
        assert_eq!(res.clusters.len(), 2);
        assert_eq!(res.clusters[0], vec![0, 1, 2]);
        assert_eq!(res.clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn rows_remain_stochastic() {
        let res = mcl(&two_triangles(), MclParams::default());
        for row in &res.matrix {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sum {s}");
        }
    }

    #[test]
    fn single_component_stays_together() {
        let mut w = vec![vec![1.0; 4]; 4];
        for (i, row) in w.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let res = mcl(&w, MclParams::default());
        assert_eq!(res.clusters.len(), 1);
        assert_eq!(res.clusters[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_nodes_form_singletons() {
        let w = vec![vec![0.0; 3]; 3];
        let res = mcl(&w, MclParams::default());
        assert_eq!(res.clusters.len(), 3);
    }

    #[test]
    fn zero_iterations_returns_normalised_input() {
        let w = two_triangles();
        let res = mcl(
            &w,
            MclParams {
                iterations: 0,
                ..MclParams::default()
            },
        );
        for row in &res.matrix {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        mcl(&[vec![0.0, 1.0]], MclParams::default());
    }

    use proptest::prelude::*;

    proptest! {
        /// Inflation preserves row-stochasticity for random matrices.
        #[test]
        fn inflation_preserves_stochastic_rows(
            vals in proptest::collection::vec(0.01f64..1.0, 9),
        ) {
            let mut m: Vec<Vec<f64>> = vals.chunks(3).map(|c| c.to_vec()).collect();
            row_normalise(&mut m);
            let inflated = inflate(&m, 2);
            for row in &inflated {
                let s: f64 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
            }
        }

        /// Clusters partition the node set.
        #[test]
        fn clusters_partition_nodes(
            vals in proptest::collection::vec(0.0f64..1.0, 16),
        ) {
            let w: Vec<Vec<f64>> = vals.chunks(4).map(|c| c.to_vec()).collect();
            let res = mcl(&w, MclParams::default());
            let mut all: Vec<usize> = res.clusters.iter().flatten().cloned().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..4).collect::<Vec<_>>());
        }
    }
}
