//! K-medoids clustering with ENFrame-compatible semantics (paper Figure 1).
//!
//! The assignment phase is identical to k-means. The update phase follows
//! Figure 1 literally:
//!
//! * `DistSum[i][l] = Σ_{p : InCl[i][p]} dist(o_l, o_p)` is computed for
//!   **every** object `l`, not just members of cluster `i`; the sum over an
//!   empty cluster is *undefined*.
//! * `Centre[i][l]` holds iff `DistSum[i][l] ≤ DistSum[i][p]` for all `p`
//!   (undefined-aware comparisons), followed by `breakTies1` which keeps the
//!   first `l` per cluster.
//! * The new medoid is the selected object.
//!
//! [`Variant::Paper`] implements exactly that; [`Variant::Classical`]
//! restricts medoid candidates to cluster members and keeps the previous
//! medoid for empty clusters, which is the textbook algorithm. The paper
//! variant is what the event-program translation produces, so it is the one
//! used in all equivalence tests.

use crate::kmeans::{assign_phase, le_undef};
use crate::point::{DistanceKind, Point};

/// Which update rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// The update rule of the paper's Figure 1 (candidates are all objects;
    /// empty clusters elect object 0 by vacuous-truth tie-breaking).
    #[default]
    Paper,
    /// Textbook k-medoids: candidates restricted to cluster members; empty
    /// clusters keep their previous medoid.
    Classical,
}

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoidsResult {
    /// `assign[l]` is the cluster of object `l` after the final assignment.
    pub assign: Vec<usize>,
    /// Indices of the final medoids (`None` = undefined medoid).
    pub medoids: Vec<Option<usize>>,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Runs k-medoids for a fixed number of iterations.
///
/// `seeds` are indices into `objects` selecting the initial medoids.
pub fn kmedoids(
    objects: &[Point],
    seeds: &[usize],
    iterations: usize,
    metric: DistanceKind,
    variant: Variant,
) -> KMedoidsResult {
    assert!(!seeds.is_empty(), "need at least one cluster");
    let n = objects.len();
    let mut medoids: Vec<Option<usize>> = seeds.iter().map(|&s| Some(s)).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iterations {
        let centres: Vec<Option<Point>> = medoids
            .iter()
            .map(|m| m.map(|i| objects[i].clone()))
            .collect();
        assign = assign_phase(objects, &centres, metric);
        match variant {
            Variant::Paper => {
                // DistSum[i][l] over all l; undefined for empty clusters.
                for (i, med) in medoids.iter_mut().enumerate() {
                    let members: Vec<usize> = (0..n).filter(|&p| assign[p] == i).collect();
                    let dist_sum: Vec<Option<f64>> = (0..n)
                        .map(|l| {
                            if members.is_empty() {
                                None
                            } else {
                                Some(
                                    members
                                        .iter()
                                        .map(|&p| metric.dist(&objects[l], &objects[p]))
                                        .sum(),
                                )
                            }
                        })
                        .collect();
                    // Centre[i][l] = ∧_p le(DistSum[l], DistSum[p]);
                    // breakTies1 keeps the first true l.
                    *med = (0..n).find(|&l| (0..n).all(|p| le_undef(dist_sum[l], dist_sum[p])));
                }
            }
            Variant::Classical => {
                for (i, med) in medoids.iter_mut().enumerate() {
                    let members: Vec<usize> = (0..n).filter(|&p| assign[p] == i).collect();
                    if members.is_empty() {
                        continue; // keep previous medoid
                    }
                    let mut best = members[0];
                    let mut best_sum = f64::INFINITY;
                    for &l in &members {
                        let s: f64 = members
                            .iter()
                            .map(|&p| metric.dist(&objects[l], &objects[p]))
                            .sum();
                        if s < best_sum {
                            best_sum = s;
                            best = l;
                        }
                    }
                    *med = Some(best);
                }
            }
        }
    }
    KMedoidsResult {
        assign,
        medoids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four points of the paper's Example 1 (roughly: two pairs).
    fn example1_points() -> Vec<Point> {
        vec![
            Point::scalar(0.0),
            Point::scalar(1.0),
            Point::scalar(5.0),
            Point::scalar(6.0),
        ]
    }

    #[test]
    fn example1_two_clusters() {
        // With medoids o1 and o3 the paper clusters {o0,o1} and {o2,o3}.
        let pts = example1_points();
        let res = kmedoids(&pts, &[1, 3], 3, DistanceKind::Euclidean, Variant::Paper);
        assert_eq!(res.assign, vec![0, 0, 1, 1]);
        // Medoids minimise the distance sums within each pair; for {0,1}
        // both have sum 1, tie broken to the first index.
        assert_eq!(res.medoids, vec![Some(0), Some(2)]);
    }

    #[test]
    fn classical_matches_paper_on_well_separated_data() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.5, 0.1),
            Point::xy(20.0, 20.0),
            Point::xy(21.0, 20.0),
            Point::xy(20.5, 20.1),
        ];
        let a = kmedoids(&pts, &[0, 3], 4, DistanceKind::Euclidean, Variant::Paper);
        let b = kmedoids(
            &pts,
            &[0, 3],
            4,
            DistanceKind::Euclidean,
            Variant::Classical,
        );
        assert_eq!(a.assign, b.assign);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn paper_variant_empty_cluster_elects_object_zero() {
        // Both seeds identical: cluster 1 receives nothing (breakTies2),
        // hence DistSum undefined, hence Centre[1][0] by vacuous truth.
        let pts = vec![Point::scalar(0.0), Point::scalar(1.0)];
        let res = kmedoids(&pts, &[0, 0], 1, DistanceKind::Euclidean, Variant::Paper);
        assert_eq!(res.medoids[1], Some(0));
    }

    #[test]
    fn classical_variant_empty_cluster_keeps_medoid() {
        let pts = vec![Point::scalar(0.0), Point::scalar(1.0)];
        let res = kmedoids(
            &pts,
            &[0, 0],
            1,
            DistanceKind::Euclidean,
            Variant::Classical,
        );
        assert_eq!(res.medoids[1], Some(0));
    }

    #[test]
    fn medoids_are_cluster_members_on_nonempty_clusters() {
        let pts = example1_points();
        let res = kmedoids(&pts, &[0, 2], 5, DistanceKind::Euclidean, Variant::Paper);
        for (i, m) in res.medoids.iter().enumerate() {
            let m = m.unwrap();
            // Paper variant allows any object, but on this data the
            // minimiser is a member.
            assert_eq!(res.assign[m], i);
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// The elected medoid (paper variant) minimises the distance sum to
        /// the cluster members among all objects, with ties to the lowest
        /// index.
        #[test]
        fn medoid_minimises_distance_sum(
            xs in proptest::collection::vec(-10.0f64..10.0, 3..12),
        ) {
            let pts: Vec<Point> = xs.iter().map(|&x| Point::scalar(x)).collect();
            let res = kmedoids(&pts, &[0, 1], 1, DistanceKind::Euclidean, Variant::Paper);
            for i in 0..2 {
                let members: Vec<usize> =
                    (0..pts.len()).filter(|&p| res.assign[p] == i).collect();
                if members.is_empty() { continue; }
                let sum = |l: usize| -> f64 {
                    members.iter().map(|&p| DistanceKind::Euclidean.dist(&pts[l], &pts[p])).sum()
                };
                let m = res.medoids[i].unwrap();
                let ms = sum(m);
                for l in 0..pts.len() {
                    prop_assert!(ms <= sum(l) + 1e-9);
                    if sum(l) + 1e-12 < ms { prop_assert!(false, "better medoid exists"); }
                }
                // Tie-break: no smaller index with equal sum.
                for l in 0..m {
                    prop_assert!(sum(l) > ms - 1e-12 || (sum(l) - ms).abs() > 1e-12);
                }
            }
        }
    }
}
