//! Points in the feature space and distance measures.

use std::fmt;

/// A point in the feature space (a feature vector of reals).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "points must have at least 1 dimension");
        Point { coords }
    }

    /// A 2-D point (the common case for the sensor workload).
    pub fn xy(x: f64, y: f64) -> Self {
        Point::new(vec![x, y])
    }

    /// A 1-D point.
    pub fn scalar(x: f64) -> Self {
        Point::new(vec![x])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Component-wise addition.
    pub fn add(&self, rhs: &Point) -> Point {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        Point::new(
            self.coords
                .iter()
                .zip(rhs.coords.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Scaling by a scalar.
    pub fn scale(&self, s: f64) -> Point {
        Point::new(self.coords.iter().map(|a| a * s).collect())
    }

    /// The origin of the given dimension.
    pub fn zero(dim: usize) -> Point {
        Point::new(vec![0.0; dim])
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Distance measure on the feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceKind {
    /// Euclidean (L2) distance — used by the paper's experiments.
    #[default]
    Euclidean,
    /// Squared Euclidean distance (monotone to L2; cheaper).
    SquaredEuclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
}

impl DistanceKind {
    /// Distance between two points.
    pub fn dist(self, a: &Point, b: &Point) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        match self {
            DistanceKind::Euclidean => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            DistanceKind::SquaredEuclidean => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
            DistanceKind::Manhattan => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y).abs())
                .sum(),
            DistanceKind::Chebyshev => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        assert_eq!(DistanceKind::Euclidean.dist(&a, &b), 5.0);
        assert_eq!(DistanceKind::SquaredEuclidean.dist(&a, &b), 25.0);
        assert_eq!(DistanceKind::Manhattan.dist(&a, &b), 7.0);
        assert_eq!(DistanceKind::Chebyshev.dist(&a, &b), 4.0);
    }

    #[test]
    fn point_arithmetic() {
        let a = Point::xy(1.0, 2.0);
        let b = Point::xy(3.0, -1.0);
        assert_eq!(a.add(&b), Point::xy(4.0, 1.0));
        assert_eq!(a.scale(2.0), Point::xy(2.0, 4.0));
        assert_eq!(Point::zero(2), Point::xy(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        DistanceKind::Euclidean.dist(&Point::scalar(1.0), &Point::xy(0.0, 0.0));
    }

    #[test]
    fn display() {
        assert_eq!(Point::xy(1.0, 2.5).to_string(), "(1, 2.5)");
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn euclidean_triangle_inequality(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let (a, b, c) = (Point::xy(ax, ay), Point::xy(bx, by), Point::xy(cx, cy));
            let d = DistanceKind::Euclidean;
            prop_assert!(d.dist(&a, &c) <= d.dist(&a, &b) + d.dist(&b, &c) + 1e-9);
        }

        #[test]
        fn distances_are_symmetric_nonnegative(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
        ) {
            let (a, b) = (Point::xy(ax, ay), Point::xy(bx, by));
            for d in [DistanceKind::Euclidean, DistanceKind::SquaredEuclidean,
                      DistanceKind::Manhattan, DistanceKind::Chebyshev] {
                prop_assert!(d.dist(&a, &b) >= 0.0);
                prop_assert!((d.dist(&a, &b) - d.dist(&b, &a)).abs() < 1e-12);
                prop_assert!(d.dist(&a, &a).abs() < 1e-12);
            }
        }
    }
}
