//! Cluster-quality metrics.
//!
//! Used by the examples and by the workload generator to sanity-check that
//! generated data actually exhibits cluster structure. The paper defers an
//! extensive quality comparison to future work but notes that ENFrame's
//! k-medoids "has the exact same quality as the golden standard"; the Rand
//! index between the two is asserted to be 1.0 in our integration tests.

/// The Rand index between two flat clusterings (values in `[0, 1]`; 1 means
/// identical partitions).
///
/// # Panics
/// Panics if the assignments have different lengths.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "assignment length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Within-cluster sum of distances for a clustering given a pairwise
/// distance function.
pub fn within_cluster_sum(assign: &[usize], dist: impl Fn(usize, usize) -> f64) -> f64 {
    let n = assign.len();
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            if assign[i] == assign[j] {
                total += dist(i, j);
            }
        }
    }
    total
}

/// Purity of clustering `assign` against ground-truth labels (fraction of
/// objects whose cluster's majority label matches their own).
pub fn purity(assign: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assign.len(), labels.len(), "length mismatch");
    if assign.is_empty() {
        return 1.0;
    }
    let k = assign.iter().max().unwrap() + 1;
    let l = labels.iter().max().unwrap() + 1;
    let mut counts = vec![vec![0usize; l]; k];
    for (&c, &t) in assign.iter().zip(labels) {
        counts[c][t] += 1;
    }
    let correct: usize = counts
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / assign.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_index_identical_is_one() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn rand_index_disagreement() {
        // Pairs: (0,1) same/same agree; (0,2) diff/same disagree;
        // (1,2) diff/same disagree => 1/3.
        let r = rand_index(&[0, 0, 1], &[0, 0, 0]);
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_singleton() {
        assert_eq!(rand_index(&[0], &[3]), 1.0);
    }

    #[test]
    fn purity_perfect_and_partial() {
        assert_eq!(purity(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 0, 1, 1]), 0.5);
    }

    #[test]
    fn within_cluster_sum_counts_only_same_cluster() {
        let assign = [0, 0, 1];
        let d = |i: usize, j: usize| (i as f64 - j as f64).abs();
        assert_eq!(within_cluster_sum(&assign, d), 1.0);
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn rand_index_is_symmetric_and_bounded(
            a in proptest::collection::vec(0usize..3, 2..15),
            b in proptest::collection::vec(0usize..3, 2..15),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let r1 = rand_index(a, b);
            let r2 = rand_index(b, a);
            prop_assert!((r1 - r2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&r1));
            prop_assert!((rand_index(a, a) - 1.0).abs() < 1e-12);
        }
    }
}
