//! # enframe-cluster — deterministic clustering algorithms
//!
//! Reference implementations of the three clustering algorithms that the
//! ENFrame paper expresses as user programs (§2.1): **k-means**,
//! **k-medoids**, and **Markov Clustering (MCL)**.
//!
//! Two properties matter for the reproduction:
//!
//! 1. **Tie-breaking parity.** The implementations break ties exactly like
//!    the ENFrame user programs (`breakTies1`/`breakTies2`: the *first*
//!    candidate in index order wins), so that running these algorithms in
//!    a possible world produces the same output as evaluating the
//!    translated event program under the corresponding valuation.
//! 2. **The paper's k-medoids variant.** The update phase of Figure 1
//!    elects, for each cluster, the object (from the *whole* data set)
//!    minimising the sum of distances to the cluster's members. This
//!    differs subtly from textbook k-medoids (which restricts candidates
//!    to cluster members); [`kmedoids::Variant`] selects either.
//!
//! The crate also provides distance metrics, cluster-quality metrics, and
//! a deterministic farthest-first initialisation heuristic (the paper
//! assumes initial centroids are given, "for example by using a
//! heuristic").

pub mod init;
pub mod kmeans;
pub mod kmedoids;
pub mod mcl;
pub mod metrics;
pub mod point;

pub use init::farthest_first;
pub use kmeans::{kmeans, KMeansResult};
pub use kmedoids::{kmedoids, KMedoidsResult, Variant};
pub use mcl::{mcl, MclParams, MclResult};
pub use point::{DistanceKind, Point};
