//! Initialisation heuristics for centroid/medoid seeding.
//!
//! The paper assumes "initial centroids have been chosen, for example by
//! using a heuristic \[31\]" and fixes them before translating to an event
//! program. We provide a deterministic farthest-first traversal (a standard
//! 2-approximation seeding for k-center) plus a seeded random choice, both
//! of which return *indices into the object list* so that the same choice
//! can be encoded into the event program (`M_i^{-1} ≡ Φ(o_{π(i)}) ⊗ o_{π(i)}`).

use crate::point::{DistanceKind, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic farthest-first traversal: the first seed is the object
/// with the lowest index among those at minimal distance from the data
/// centroid, each subsequent seed maximises the distance to the chosen set.
/// Ties break towards the lower index, matching ENFrame tie-breaking.
///
/// # Panics
/// Panics if `k == 0` or `k > objects.len()`.
pub fn farthest_first(objects: &[Point], k: usize, metric: DistanceKind) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= objects.len(),
        "cannot choose {k} seeds from {} objects",
        objects.len()
    );
    let n = objects.len();
    let dim = objects[0].dim();
    // Centre of mass.
    let mut com = Point::zero(dim);
    for o in objects {
        com = com.add(o);
    }
    com = com.scale(1.0 / n as f64);
    // First seed: closest to centre of mass (lowest index on ties).
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, o) in objects.iter().enumerate() {
        let d = metric.dist(o, &com);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    let mut seeds = vec![best];
    let mut min_dist: Vec<f64> = objects
        .iter()
        .map(|o| metric.dist(o, &objects[best]))
        .collect();
    while seeds.len() < k {
        let mut far = usize::MAX;
        let mut far_d = f64::NEG_INFINITY;
        for (i, &d) in min_dist.iter().enumerate() {
            if seeds.contains(&i) {
                continue;
            }
            if d > far_d {
                far_d = d;
                far = i;
            }
        }
        seeds.push(far);
        for (i, o) in objects.iter().enumerate() {
            let d = metric.dist(o, &objects[far]);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    seeds
}

/// Seeded random selection of `k` distinct object indices.
pub fn random_seeds(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k <= n, "cannot choose {k} seeds from {n} objects");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::scalar(i as f64)).collect()
    }

    #[test]
    fn farthest_first_spreads_seeds() {
        let pts = line(10);
        let seeds = farthest_first(&pts, 2, DistanceKind::Euclidean);
        // First seed near the centre; second at one extreme.
        assert!(seeds[0] == 4 || seeds[0] == 5);
        assert!(seeds[1] == 0 || seeds[1] == 9);
    }

    #[test]
    fn farthest_first_is_deterministic() {
        let pts = line(20);
        let a = farthest_first(&pts, 4, DistanceKind::Euclidean);
        let b = farthest_first(&pts, 4, DistanceKind::Euclidean);
        assert_eq!(a, b);
    }

    #[test]
    fn farthest_first_distinct_seeds() {
        let pts = line(7);
        let seeds = farthest_first(&pts, 7, DistanceKind::Euclidean);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot choose")]
    fn farthest_first_rejects_large_k() {
        farthest_first(&line(2), 3, DistanceKind::Euclidean);
    }

    #[test]
    fn random_seeds_distinct_and_seeded() {
        let a = random_seeds(30, 5, 42);
        let b = random_seeds(30, 5, 42);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        assert!(a.iter().all(|&i| i < 30));
    }
}
