//! K-means clustering with ENFrame-compatible semantics (paper Figure 2).
//!
//! The assignment and update phases follow the user program of Figure 2
//! *literally*, including its behaviour on undefined centroids:
//!
//! * `InCl[i][l]` holds iff `dist(o_l, M_i) ≤ dist(o_l, M_j)` for all `j`,
//!   where a comparison involving an undefined distance is **true** (§3.2).
//!   Consequently a cluster with an undefined centroid attracts *every*
//!   object (before tie-breaking).
//! * `breakTies2` assigns each object to the first of its closest clusters.
//! * The update phase recomputes each centroid as the mean of its members;
//!   an empty cluster's centroid becomes *undefined* (`None`), mirroring
//!   `invert(reduce_count(...))` evaluating to `u`.
//!
//! This literal semantics is what makes the deterministic algorithm agree,
//! world by world, with the probabilistic interpretation of the event
//! program — the paper's "golden standard" (§5).

use crate::point::{DistanceKind, Point};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// `assign[l]` is the cluster index of object `l` after the final
    /// assignment phase.
    pub assign: Vec<usize>,
    /// Final centroids; `None` is an undefined centroid (empty cluster).
    pub centroids: Vec<Option<Point>>,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Compares two optional distances with the undefined-aware rule of §3.2:
/// the comparison `a ≤ b` is true when either side is undefined.
pub(crate) fn le_undef(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => x <= y,
    }
}

/// Assignment phase shared by k-means and k-medoids: for each object,
/// `InCl[i][l]` = conjunction over `j` of undefined-aware `≤`, then
/// `breakTies2` (first true cluster wins).
pub(crate) fn assign_phase(
    objects: &[Point],
    centres: &[Option<Point>],
    metric: DistanceKind,
) -> Vec<usize> {
    let k = centres.len();
    objects
        .iter()
        .map(|o| {
            let d: Vec<Option<f64>> = centres
                .iter()
                .map(|c| c.as_ref().map(|c| metric.dist(o, c)))
                .collect();
            // InCl[i] = ∧_j [d_i <= d_j]; breakTies2 keeps the first true.
            (0..k)
                .find(|&i| (0..k).all(|j| le_undef(d[i], d[j])))
                .expect("at least one cluster is closest")
        })
        .collect()
}

/// Runs k-means for a fixed number of iterations (the user language has no
/// fixpoint construct, so like the paper we iterate `iter` times).
///
/// `seeds` are indices into `objects` selecting the initial centroids.
///
/// # Panics
/// Panics if `seeds` is empty or contains an out-of-range index.
pub fn kmeans(
    objects: &[Point],
    seeds: &[usize],
    iterations: usize,
    metric: DistanceKind,
) -> KMeansResult {
    assert!(!seeds.is_empty(), "need at least one cluster");
    let k = seeds.len();
    let mut centroids: Vec<Option<Point>> =
        seeds.iter().map(|&s| Some(objects[s].clone())).collect();
    let mut assign = vec![0usize; objects.len()];
    for _ in 0..iterations {
        assign = assign_phase(objects, &centroids, metric);
        // Update phase: centroid = mean of members, undefined when empty.
        let dim = objects.first().map_or(1, Point::dim);
        let mut sums = vec![Point::zero(dim); k];
        let mut counts = vec![0usize; k];
        for (o, &c) in objects.iter().zip(assign.iter()) {
            sums[c] = sums[c].add(o);
            counts[c] += 1;
        }
        for i in 0..k {
            centroids[i] = if counts[i] == 0 {
                None
            } else {
                Some(sums[i].scale(1.0 / counts[i] as f64))
            };
        }
    }
    KMeansResult {
        assign,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Point> {
        vec![
            Point::xy(0.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(1.0, 0.0),
            Point::xy(10.0, 10.0),
            Point::xy(10.0, 11.0),
            Point::xy(11.0, 10.0),
        ]
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &[0, 3], 5, DistanceKind::Euclidean);
        assert_eq!(res.assign[0..3], [0, 0, 0]);
        assert_eq!(res.assign[3..6], [1, 1, 1]);
        let c0 = res.centroids[0].as_ref().unwrap();
        assert!((c0.coords()[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_to_first_cluster() {
        // Object exactly between two centroids goes to cluster 0.
        let pts = vec![Point::scalar(0.0), Point::scalar(2.0), Point::scalar(1.0)];
        let res = kmeans(&pts, &[0, 1], 1, DistanceKind::Euclidean);
        assert_eq!(res.assign[2], 0);
    }

    #[test]
    fn zero_iterations_keeps_initial_assignment_empty() {
        let pts = two_blobs();
        let res = kmeans(&pts, &[0, 3], 0, DistanceKind::Euclidean);
        assert_eq!(res.iterations, 0);
        // No assignment phase ran: assignment vector is the default.
        assert_eq!(res.assign.len(), 6);
    }

    #[test]
    fn undefined_centroid_attracts_everything() {
        // Seeds such that cluster 1's centroid becomes undefined: both
        // seeds identical, so cluster 1 gets no members in iteration 1
        // (ties go to cluster 0) and becomes undefined; in iteration 2 the
        // undefined cluster 1 has all-true InCl — but cluster 0 also has
        // all-true only where it is closest... breakTies2 keeps cluster 0
        // only when InCl[0] is true, which holds only for the argmin.
        let pts = vec![Point::scalar(0.0), Point::scalar(1.0)];
        let res = kmeans(&pts, &[0, 0], 2, DistanceKind::Euclidean);
        // Iteration 1: all to cluster 0; centroid1 = None.
        // Iteration 2: d(l, c1) undefined ⇒ InCl[0][l] requires
        // d0 <= undefined (true) so cluster 0 still wins by order.
        assert_eq!(res.assign, vec![0, 0]);
        assert!(res.centroids[1].is_none());
    }

    #[test]
    fn le_undef_truth_table() {
        assert!(le_undef(None, Some(1.0)));
        assert!(le_undef(Some(1.0), None));
        assert!(le_undef(None, None));
        assert!(le_undef(Some(1.0), Some(1.0)));
        assert!(!le_undef(Some(2.0), Some(1.0)));
    }

    use proptest::prelude::*;

    proptest! {
        /// Every object is assigned to some cluster in range.
        #[test]
        fn assignment_total_and_in_range(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..20),
            k in 1usize..4,
            iters in 1usize..4,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&x| Point::scalar(x)).collect();
            let k = k.min(pts.len());
            let seeds: Vec<usize> = (0..k).collect();
            let res = kmeans(&pts, &seeds, iters, DistanceKind::Euclidean);
            prop_assert_eq!(res.assign.len(), pts.len());
            prop_assert!(res.assign.iter().all(|&c| c < k));
        }
    }
}
