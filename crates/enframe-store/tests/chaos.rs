//! Chaos suite for the artifact store (ISSUE 9).
//!
//! CI runs this binary with `ENFRAME_FAILPOINTS` armed process-wide
//! (`store_write`/`store_fsync`/`store_rename` faults on the save
//! path, `store_read` faults on the load path) and additionally
//! injects deterministic faults and file-level corruption of its own:
//! torn writes (every truncation point), bit flips, version skew, and
//! fingerprint mixups. The contract under any fault schedule:
//!
//! * a load that returns `Ok` must produce the exact probabilities;
//! * every fault and every corruption surfaces as a *structured*
//!   [`StoreError`] — never a panic, a hang, or a wrong answer;
//! * a failed save never leaves a partial artifact behind (no `.tmp`
//!   litter, no half-written file a later load could misread);
//! * after any failure, the recovery ladder — recompile from the
//!   network, re-save — restores service.
//!
//! With the variable unset the save/load loop is a plain persistence
//! smoke test.

use enframe_core::failpoint;
use enframe_core::{space, Program, VarTable};
use enframe_network::Network;
use enframe_obdd::dnnf::{DnnfEngine, DnnfOptions};
use enframe_store::{fingerprint_dnnf, ArtifactStore, EngineKind, StoreError};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Save/load rounds under the env-armed schedule.
const ROUNDS: usize = 40;

/// The whole suite must finish well inside CI patience even with every
/// site firing: a hang trips this bound instead of the job timeout.
const WALL_LIMIT: Duration = Duration::from_secs(120);

fn mutex_chain(k: usize) -> Program {
    let mut p = Program::new();
    let vars: Vec<_> = (0..k).map(|_| p.fresh_var()).collect();
    for j in 0..k {
        let mut conj: Vec<_> = vars[..j].iter().map(|&x| Program::nvar(x)).collect();
        conj.push(Program::var(vars[j]));
        let e = p.declare_event(&format!("Phi{j}"), Program::and(conj));
        p.add_target(e);
    }
    p
}

fn assert_exact(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: wrong target count");
    for i in 0..want.len() {
        assert!(
            (got[i] - want[i]).abs() < 1e-9,
            "{what} target {i}: {} vs {} — a faulted round may fail, \
             but a served answer must be exact",
            got[i],
            want[i]
        );
    }
}

/// No temp files may outlive a save attempt, successful or not: a
/// crash-safe writer either renames into place or cleans up.
fn assert_no_tmp_litter(root: &PathBuf, what: &str) {
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "{what}: temp file `{name}` left behind in the store"
            );
        }
    }
}

#[test]
fn store_survives_faults_and_corruption() {
    let armed = std::env::var("ENFRAME_FAILPOINTS").unwrap_or_default();
    let t0 = Instant::now();
    let p = mutex_chain(10);
    let g = p.ground().unwrap();
    let net = Network::build(&g).unwrap();
    let vt = VarTable::uniform(10, 0.4);
    let want = space::target_probabilities(&g, &vt);
    let opts = DnnfOptions::default();
    let fp = fingerprint_dnnf(&net, &opts);

    let root = std::env::temp_dir().join(format!("enframe-store-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::new(&root);
    let artifact = store.path_for(EngineKind::Dnnf, fp);

    // Phase A — save/load rounds under whatever schedule the
    // environment armed, with a periodic bit flip thrown in so
    // corruption detection interleaves with injected I/O faults.
    let (mut hits, mut recompiles, mut corruptions) = (0usize, 0usize, 0usize);
    for round in 0..ROUNDS {
        assert!(
            t0.elapsed() < WALL_LIMIT,
            "store chaos wedged after {round} rounds under `{armed}`"
        );
        if round % 7 == 6 {
            if let Ok(mut bytes) = std::fs::read(&artifact) {
                let pos = (round * 131) % bytes.len();
                bytes[pos] ^= 0x10;
                std::fs::write(&artifact, &bytes).unwrap();
            }
        }
        match store.load_dnnf(fp, 1) {
            Ok(engine) => {
                assert_exact(
                    &engine.probabilities(&vt),
                    &want,
                    &format!("round {round} load"),
                );
                hits += 1;
            }
            Err(e) => {
                if matches!(
                    e,
                    StoreError::Corrupt { .. }
                        | StoreError::VersionMismatch { .. }
                        | StoreError::FingerprintMismatch { .. }
                ) {
                    corruptions += 1;
                } else if !e.is_not_found() {
                    // A non-miss I/O failure must be the injected one.
                    assert!(
                        e.to_string().contains("injected"),
                        "round {round}: unexpected I/O failure class: {e}"
                    );
                }
                // Recovery ladder: recompile from the network (exact),
                // then try to re-save — a save fault is tolerated, the
                // next round simply misses again.
                match DnnfEngine::compile(&net, &opts) {
                    Ok(engine) => {
                        assert_exact(
                            &engine.probabilities(&vt),
                            &want,
                            &format!("round {round} recompile"),
                        );
                        recompiles += 1;
                        let _ = store.save_dnnf(fp, &engine, &vt);
                    }
                    Err(ce) => assert!(
                        ce.to_string().contains("injected"),
                        "round {round}: recompile failed non-structurally: {ce}"
                    ),
                }
            }
        }
        assert_no_tmp_litter(&root, &format!("round {round}"));
    }
    assert!(
        hits + recompiles > 0,
        "no round ever served an answer under `{armed}`"
    );

    // Phase B — deterministic write-side faults: each save site, fired
    // every time, must fail structurally, leave no partial artifact,
    // and recover the moment the fault clears.
    for spec in [
        "store_write:every-1",
        "store_fsync:every-1",
        "store_rename:every-1",
    ] {
        let _ = std::fs::remove_file(&artifact);
        let engine = DnnfEngine::compile(&net, &opts).expect("clean compile");
        {
            let _guard = failpoint::override_for_test(spec);
            let err = store
                .save_dnnf(fp, &engine, &vt)
                .expect_err("armed save must fail");
            assert!(
                matches!(err, StoreError::Io { .. }) && err.to_string().contains("injected"),
                "{spec}: wrong failure class: {err}"
            );
            assert_no_tmp_litter(&root, spec);
            assert!(
                !artifact.exists(),
                "{spec}: a failed save left an artifact in place"
            );
        }
        // Recovery with every fault cleared (the guard also masks any
        // env-armed schedule for the duration).
        let _calm = failpoint::override_for_test("");
        let miss = store.load_dnnf(fp, 1).expect_err("nothing was persisted");
        assert!(miss.is_not_found(), "{spec}: expected a miss, got: {miss}");
        store.save_dnnf(fp, &engine, &vt).expect("recovered save");
        let back = store.load_dnnf(fp, 1).expect("recovered load");
        assert_exact(&back.probabilities(&vt), &want, spec);
    }

    // Phase C — deterministic read-side fault: an injected read error
    // is an I/O failure, not a miss and not corruption.
    {
        let _guard = failpoint::override_for_test("store_read:every-1");
        let err = store.load_dnnf(fp, 1).expect_err("armed read must fail");
        assert!(
            matches!(&err, StoreError::Io { .. }) && !err.is_not_found(),
            "store_read: wrong failure class: {err}"
        );
        assert!(err.to_string().contains("injected"), "store_read: {err}");
    }

    // Phases D-F corrupt the file programmatically; mask any env-armed
    // I/O faults so the classification assertions are deterministic.
    let _calm = failpoint::override_for_test("");
    let back = store.load_dnnf(fp, 1).expect("read recovers once disarmed");
    assert_exact(&back.probabilities(&vt), &want, "post-read-fault load");

    // Phase D — torn writes: every truncation point (sampled densely)
    // must be detected, never served.
    let pristine = std::fs::read(&artifact).expect("artifact readable");
    let step = (pristine.len() / 41).max(1);
    let mut cuts = 0usize;
    for cut in (0..pristine.len())
        .step_by(step)
        .chain([pristine.len() - 1])
    {
        std::fs::write(&artifact, &pristine[..cut]).unwrap();
        let err = store
            .load_dnnf(fp, 1)
            .expect_err("truncated artifact must be rejected");
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "truncation at {cut}/{} misclassified: {err}",
            pristine.len()
        );
        cuts += 1;
    }
    std::fs::write(&artifact, &pristine).unwrap();
    let back = store.load_dnnf(fp, 1).expect("restored artifact loads");
    assert_exact(&back.probabilities(&vt), &want, "post-truncation restore");

    // Phase E — version skew is its own error, reported before any
    // digest check can muddy the diagnosis.
    let mut skewed = pristine.clone();
    skewed[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&artifact, &skewed).unwrap();
    match store.load_dnnf(fp, 1) {
        Err(StoreError::VersionMismatch { found, .. }) => assert_eq!(found, 99),
        other => panic!("version skew misclassified: {other:?}"),
    }
    std::fs::write(&artifact, &pristine).unwrap();

    // Phase F — a stale artifact under the wrong key: internally
    // consistent, but keyed by a different lineage.
    let other = mutex_chain(9);
    let og = other.ground().unwrap();
    let other_net = Network::build(&og).unwrap();
    let other_fp = fingerprint_dnnf(&other_net, &opts);
    assert_ne!(fp, other_fp, "distinct lineage must fingerprint distinctly");
    std::fs::copy(&artifact, store.path_for(EngineKind::Dnnf, other_fp)).unwrap();
    match store.load_dnnf(other_fp, 1) {
        Err(StoreError::FingerprintMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, fp);
            assert_eq!(expected, other_fp);
        }
        other => panic!("fingerprint mixup misclassified: {other:?}"),
    }

    println!(
        "store chaos `{armed}`: {hits} hits, {recompiles} recompiles, \
         {corruptions} corruptions detected, {cuts} truncations rejected; {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    let _ = std::fs::remove_dir_all(&root);
}
