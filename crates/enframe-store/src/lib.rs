//! Crash-safe compiled-artifact store (paper §6 infrastructure).
//!
//! Knowledge compilation dominates end-to-end latency (the paper's
//! Figure 9 measures it at orders of magnitude over inference), and the
//! compiled form is a pure function of the event network and the engine
//! options. This crate persists compiled artifacts — d-DNNF node arrays
//! and OBDD snapshots — on disk keyed by a **lineage fingerprint**
//! ([`fingerprint_network`]), so a re-run over unchanged lineage pays a
//! load instead of a recompile.
//!
//! Two properties make the cache safe to trust:
//!
//! * **Crash-safe writes.** [`ArtifactStore::save_dnnf`]/[`save_obdd`](
//!   ArtifactStore::save_obdd) write a temp file, fsync, then rename
//!   atomically — a crash mid-save leaves the previous artifact (or
//!   nothing), never a torn file under the final name.
//! * **Zero-trust loads.** The on-disk frame is versioned and
//!   checksummed (per-section CRC-32 plus a whole-file digest), and a
//!   load that passes the checksums is *still* revalidated: structural
//!   invariants are re-checked (d-DNNF decomposability via support
//!   bitsets and determinism of every OR; OBDD ordering, reduction, and
//!   complement-edge canonicity), and a stored per-target WMC digest is
//!   compared against a fresh sweep over the rebuilt artifact. Any
//!   mismatch is a structured [`StoreError`] — never a panic, never a
//!   silently wrong probability.
//!
//! A failed load (missing, corrupt, stale version, wrong fingerprint)
//! is the first rung of the degradation ladder: the caller recompiles
//! under its [`Budget`](enframe_core::budget::Budget), and if that is
//! exhausted too, falls back to network bounds. The store reports
//! `store_hits` / `store_misses` / `store_corruptions` /
//! `store_revalidations` counters and `store_load` / `store_save` /
//! `store_verify` phase spans through `enframe-telemetry`.

mod frame;

use enframe_core::event::CmpOp;
use enframe_core::fingerprint::{Fingerprint, FingerprintHasher};
use enframe_core::value::Value;
use enframe_core::var::{Var, VarTable};
use enframe_network::{Network, NodeKind};
use enframe_obdd::dnnf::{Dnnf, DnnfEngine, DnnfManager, DnnfNode, DnnfOptions};
use enframe_obdd::{ObddEngine, ObddOptions, ObddSnapshot, SnapshotNode};
use enframe_prob::order::VarOrder;
use enframe_telemetry::{self as telemetry, Counter, Phase};
use std::path::{Path, PathBuf};

/// Absolute tolerance for the OBDD WMC digest check. A rebuilt manager
/// re-derives every node, so summation order can differ from the saving
/// process at the last few ulps; the d-DNNF sweep is canonical and is
/// held to bitwise equality instead.
const OBDD_WMC_TOL: f64 = 1e-12;

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why an artifact could not be saved or loaded.
///
/// Every variant carries the path it concerns. None of these are
/// fatal to the caller: each maps to "recompile from the network",
/// the next rung of the degradation ladder.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O failed (including injected failpoint faults).
    /// `is_not_found` distinguishes a plain cache miss.
    Io {
        /// The artifact (or temp) path involved.
        path: PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// The bytes are not a valid artifact: bad magic, checksum or
    /// digest mismatch, truncation, malformed payload, a structural
    /// invariant that no longer holds, or a WMC digest that disagrees
    /// with a fresh sweep.
    Corrupt {
        /// The artifact path.
        path: PathBuf,
        /// Human-readable description of the first violation found.
        detail: String,
    },
    /// The artifact was written by a different format version.
    VersionMismatch {
        /// The artifact path.
        path: PathBuf,
        /// Version found in the file header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// The file is internally consistent but keyed by a different
    /// lineage fingerprint than the one requested — a stale or
    /// misplaced artifact.
    FingerprintMismatch {
        /// The artifact path.
        path: PathBuf,
        /// Fingerprint recorded in the file.
        found: Fingerprint,
        /// Fingerprint the caller asked for.
        expected: Fingerprint,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "artifact I/O failed at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact at {}: {detail}", path.display())
            }
            StoreError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "artifact at {} has format version {found}, this build reads {expected}",
                path.display()
            ),
            StoreError::FingerprintMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "artifact at {} is keyed by fingerprint {found}, wanted {expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Whether this is a plain cache miss (the artifact file does not
    /// exist) rather than a fault or corruption.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StoreError::Io { source, .. }
            if source.kind() == std::io::ErrorKind::NotFound)
    }
}

// ---------------------------------------------------------------------
// Engine kinds and lineage fingerprints.
// ---------------------------------------------------------------------

/// Which compiled form an artifact holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// A d-DNNF node array (`enframe_obdd::dnnf`).
    Dnnf,
    /// An OBDD snapshot (`enframe_obdd::ObddSnapshot`).
    Obdd,
}

impl EngineKind {
    /// Short name used in artifact file names.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Dnnf => "dnnf",
            EngineKind::Obdd => "obdd",
        }
    }

    fn code(self) -> u8 {
        match self {
            EngineKind::Dnnf => 0,
            EngineKind::Obdd => 1,
        }
    }
}

/// The lineage fingerprint an artifact is keyed by: a content hash of
/// everything that determines the compiled form — the full event
/// network (node kinds, payloads, wiring, constant values), the target
/// set and names, the engine kind, the variable-order heuristic, and
/// the var-groups. Worker count and budget are deliberately *not*
/// hashed: they shape how fast compilation runs, not what it produces.
pub fn fingerprint_network(
    net: &Network,
    kind: EngineKind,
    order: VarOrder,
    groups: &[Vec<Var>],
) -> Fingerprint {
    let mut h = FingerprintHasher::new("enframe-store/lineage");
    h.write_discriminant(kind.code() as u32);
    h.write_u32(net.n_vars);
    h.write_len(net.len());
    for node in net.nodes() {
        hash_kind(&mut h, &node.kind);
        h.write_len(node.children.len());
        for c in &node.children {
            h.write_u32(c.0);
        }
        hash_value(&mut h, node.value.as_ref());
    }
    h.write_len(net.targets.len());
    for t in &net.targets {
        h.write_u32(t.0);
    }
    h.write_len(net.target_names.len());
    for name in &net.target_names {
        h.write_str(name);
    }
    h.write_discriminant(match order {
        VarOrder::Sequential => 0,
        VarOrder::StaticOccurrence => 1,
        VarOrder::Dynamic => 2,
    });
    h.write_len(groups.len());
    for g in groups {
        h.write_len(g.len());
        for v in g {
            h.write_u32(v.0);
        }
    }
    h.finish()
}

/// [`fingerprint_network`] with the fields a d-DNNF compile reads from
/// its options.
pub fn fingerprint_dnnf(net: &Network, opts: &DnnfOptions) -> Fingerprint {
    fingerprint_network(net, EngineKind::Dnnf, opts.order, &[])
}

/// [`fingerprint_network`] with the fields an OBDD compile reads from
/// its options.
pub fn fingerprint_obdd(net: &Network, opts: &ObddOptions) -> Fingerprint {
    fingerprint_network(net, EngineKind::Obdd, opts.order, &opts.groups)
}

fn hash_kind(h: &mut FingerprintHasher, k: &NodeKind) {
    match k {
        NodeKind::Var(v) => {
            h.write_discriminant(0);
            h.write_u32(v.0);
        }
        NodeKind::ConstBool(b) => {
            h.write_discriminant(1);
            h.write_u32(*b as u32);
        }
        NodeKind::Not => h.write_discriminant(2),
        NodeKind::And => h.write_discriminant(3),
        NodeKind::Or => h.write_discriminant(4),
        NodeKind::Cmp(op) => {
            h.write_discriminant(5);
            h.write_u32(match op {
                CmpOp::Le => 0,
                CmpOp::Lt => 1,
                CmpOp::Ge => 2,
                CmpOp::Gt => 3,
                CmpOp::Eq => 4,
            });
        }
        NodeKind::ConstVal => h.write_discriminant(6),
        NodeKind::Cond => h.write_discriminant(7),
        NodeKind::Guard => h.write_discriminant(8),
        NodeKind::Sum => h.write_discriminant(9),
        NodeKind::Prod => h.write_discriminant(10),
        NodeKind::Inv => h.write_discriminant(11),
        NodeKind::Pow(e) => {
            h.write_discriminant(12);
            h.write_u64(*e as i64 as u64);
        }
        NodeKind::Dist => h.write_discriminant(13),
        NodeKind::LoopIn { boolish } => {
            h.write_discriminant(14);
            h.write_u32(*boolish as u32);
        }
    }
}

fn hash_value(h: &mut FingerprintHasher, v: Option<&Value>) {
    match v {
        None => h.write_discriminant(0),
        Some(Value::Undef) => h.write_discriminant(1),
        Some(Value::Num(x)) => {
            h.write_discriminant(2);
            h.write_f64_bits(*x);
        }
        Some(Value::Point(p)) => {
            h.write_discriminant(3);
            h.write_len(p.len());
            for &x in p.iter() {
                h.write_f64_bits(x);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

/// A directory of compiled artifacts, one file per (engine kind,
/// fingerprint) pair.
///
/// All methods are `&self` and safe to call from several processes at
/// once: saves are atomic renames (last writer wins with a complete
/// file either way) and loads never observe a partial write.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `root`. The directory is created lazily on the
    /// first save; a missing directory on load is just a miss.
    pub fn new(root: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file an artifact with this key lives at.
    pub fn path_for(&self, kind: EngineKind, fp: Fingerprint) -> PathBuf {
        self.root.join(format!("{}-{fp}.efs", kind.name()))
    }

    /// Whether an artifact is present under this key. A cheap
    /// existence probe for cache-tier management — it does **not**
    /// validate the artifact (a later load may still find it corrupt;
    /// the zero-trust pipeline is the only judge of usability).
    pub fn contains(&self, kind: EngineKind, fp: Fingerprint) -> bool {
        self.path_for(kind, fp).is_file()
    }

    /// Evicts the artifact keyed by `(kind, fp)` from the disk tier.
    /// Returns whether an artifact was actually removed; a missing
    /// entry is `Ok(false)`, not an error, so eviction is idempotent
    /// (mirroring how loads treat a missing file as a plain miss).
    pub fn remove(&self, kind: EngineKind, fp: Fingerprint) -> Result<bool, StoreError> {
        let path = self.path_for(kind, fp);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(source) => Err(StoreError::Io { path, source }),
        }
    }

    /// Persists a compiled d-DNNF engine under `fp`, including the
    /// weights in `vt` and the per-target probabilities they induce
    /// (the WMC digest future loads are checked against). Returns the
    /// artifact path.
    pub fn save_dnnf(
        &self,
        fp: Fingerprint,
        engine: &DnnfEngine,
        vt: &VarTable,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(EngineKind::Dnnf, fp);
        let _span = telemetry::span(Phase::StoreSave);
        let weights = table_weights(vt);
        let probs = engine.probabilities(vt);
        let f = frame::Frame {
            kind: EngineKind::Dnnf.code(),
            fingerprint: fp.0,
            sections: encode_dnnf(engine, &weights, &probs),
        };
        frame::write_atomic(&path, &f.encode()).map_err(|source| StoreError::Io {
            path: path.clone(),
            source,
        })?;
        Ok(path)
    }

    /// Loads, checks, and revalidates the d-DNNF artifact keyed by
    /// `fp`. `workers` configures the rebuilt engine's query
    /// parallelism (`0` = auto) — it does not affect the artifact.
    pub fn load_dnnf(&self, fp: Fingerprint, workers: usize) -> Result<DnnfEngine, StoreError> {
        let path = self.path_for(EngineKind::Dnnf, fp);
        let _span = telemetry::span(Phase::StoreLoad);
        let result = self.load_dnnf_at(&path, fp, workers);
        note_outcome(&result);
        result
    }

    fn load_dnnf_at(
        &self,
        path: &Path,
        fp: Fingerprint,
        workers: usize,
    ) -> Result<DnnfEngine, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let f = read_frame(path, EngineKind::Dnnf, fp, 3)?;
        let nodes = decode_dnnf_nodes(&f.sections[0]).map_err(&corrupt)?;
        let man = DnnfManager::from_nodes(nodes).map_err(&corrupt)?;
        let (targets, names) = decode_targets(&f.sections[1]).map_err(&corrupt)?;
        let targets = targets.into_iter().map(Dnnf::from_index).collect();
        let engine = DnnfEngine::from_parts(man, targets, names, workers).map_err(&corrupt)?;
        let (weights, stored) = decode_weights(&f.sections[2]).map_err(&corrupt)?;

        let _verify = telemetry::span(Phase::StoreVerify);
        telemetry::count(Counter::StoreRevalidation);
        check_weights(&weights).map_err(&corrupt)?;
        let mentioned = engine
            .manager()
            .nodes()
            .iter()
            .filter_map(|n| match n {
                DnnfNode::Lit { var, .. } => Some(var.index()),
                _ => None,
            })
            .max();
        if let Some(m) = mentioned {
            if m >= weights.len() {
                return Err(corrupt(format!(
                    "stored weights cover {} variables but the artifact mentions x{m}",
                    weights.len()
                )));
            }
        }
        verify_dnnf(engine.manager()).map_err(&corrupt)?;
        if stored.len() != engine.n_targets() {
            return Err(corrupt(format!(
                "stored WMC digest has {} entries for {} targets",
                stored.len(),
                engine.n_targets()
            )));
        }
        let vt = VarTable::new(weights);
        let fresh = engine.probabilities(&vt);
        for (i, (&f, &s)) in fresh.iter().zip(stored.iter()).enumerate() {
            // The d-DNNF sweep reduces children canonically, so any
            // honest rebuild reproduces the save-time bits exactly.
            if f.to_bits() != s.to_bits() {
                return Err(corrupt(format!(
                    "WMC digest mismatch on target {i}: recomputed {f:e}, stored {s:e}"
                )));
            }
        }
        Ok(engine)
    }

    /// Persists a compiled OBDD engine under `fp` (unique-table
    /// contents reachable from the targets, variable order, blocks,
    /// weights, and the WMC digest). Returns the artifact path.
    pub fn save_obdd(
        &self,
        fp: Fingerprint,
        engine: &ObddEngine,
        vt: &VarTable,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(EngineKind::Obdd, fp);
        let _span = telemetry::span(Phase::StoreSave);
        let snap = engine.export();
        let weights = table_weights(vt);
        let probs = engine.probabilities(vt);
        let f = frame::Frame {
            kind: EngineKind::Obdd.code(),
            fingerprint: fp.0,
            sections: encode_obdd(&snap, &weights, &probs),
        };
        frame::write_atomic(&path, &f.encode()).map_err(|source| StoreError::Io {
            path: path.clone(),
            source,
        })?;
        Ok(path)
    }

    /// Loads, checks, and revalidates the OBDD artifact keyed by `fp`.
    pub fn load_obdd(&self, fp: Fingerprint) -> Result<ObddEngine, StoreError> {
        let path = self.path_for(EngineKind::Obdd, fp);
        let _span = telemetry::span(Phase::StoreLoad);
        let result = self.load_obdd_at(&path, fp);
        note_outcome(&result);
        result
    }

    fn load_obdd_at(&self, path: &Path, fp: Fingerprint) -> Result<ObddEngine, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let f = read_frame(path, EngineKind::Obdd, fp, 4)?;
        let snap = decode_obdd_snapshot(&f.sections[0], &f.sections[1], &f.sections[2])
            .map_err(&corrupt)?;
        // `import` re-checks every structural invariant: blocks
        // partition the levels, no variable sits on two levels, edges
        // point strictly downward, stored hi edges are never
        // complemented, and no node is unreduced or duplicated.
        let engine = ObddEngine::import(&snap).map_err(&corrupt)?;
        let (weights, stored) = decode_weights(&f.sections[3]).map_err(&corrupt)?;

        let _verify = telemetry::span(Phase::StoreVerify);
        telemetry::count(Counter::StoreRevalidation);
        check_weights(&weights).map_err(&corrupt)?;
        if let Some(m) = snap.level_vars.iter().map(|v| v.index()).max() {
            if m >= weights.len() {
                return Err(corrupt(format!(
                    "stored weights cover {} variables but the order mentions x{m}",
                    weights.len()
                )));
            }
        }
        if stored.len() != engine.n_targets() {
            return Err(corrupt(format!(
                "stored WMC digest has {} entries for {} targets",
                stored.len(),
                engine.n_targets()
            )));
        }
        let vt = VarTable::new(weights);
        let fresh = engine.probabilities(&vt);
        for (i, (&f, &s)) in fresh.iter().zip(stored.iter()).enumerate() {
            // `partial_cmp` makes the NaN case explicit: an
            // incomparable pair (`None`) is corruption, not a pass.
            let within = matches!(
                (f - s).abs().partial_cmp(&OBDD_WMC_TOL),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !within {
                return Err(corrupt(format!(
                    "WMC digest mismatch on target {i}: recomputed {f:e}, stored {s:e}"
                )));
            }
        }
        Ok(engine)
    }
}

fn note_outcome<T>(result: &Result<T, StoreError>) {
    match result {
        Ok(_) => telemetry::count(Counter::StoreHit),
        Err(e) if e.is_not_found() => telemetry::count(Counter::StoreMiss),
        // A transient I/O fault is neither a miss nor corruption;
        // the caller's recompile path covers it.
        Err(StoreError::Io { .. }) => {}
        Err(_) => telemetry::count(Counter::StoreCorruption),
    }
}

fn table_weights(vt: &VarTable) -> Vec<f64> {
    (0..vt.len()).map(|i| vt.prob(Var(i as u32))).collect()
}

fn check_weights(weights: &[f64]) -> Result<(), String> {
    for (i, w) in weights.iter().enumerate() {
        if !(w.is_finite() && (0.0..=1.0).contains(w)) {
            return Err(format!("stored weight for x{i} is {w:e}, outside [0, 1]"));
        }
    }
    Ok(())
}

fn read_frame(
    path: &Path,
    kind: EngineKind,
    fp: Fingerprint,
    n_sections: usize,
) -> Result<frame::Frame, StoreError> {
    let bytes = frame::read_file(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let f = frame::Frame::decode(&bytes).map_err(|e| match e {
        frame::FrameError::Version { found } => StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found,
            expected: frame::FORMAT_VERSION,
        },
        frame::FrameError::Corrupt(detail) => StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        },
    })?;
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if f.kind != kind.code() {
        return Err(corrupt(format!(
            "artifact holds engine kind {}, wanted {}",
            f.kind,
            kind.code()
        )));
    }
    if f.fingerprint != fp.0 {
        return Err(StoreError::FingerprintMismatch {
            path: path.to_path_buf(),
            found: Fingerprint(f.fingerprint),
            expected: fp,
        });
    }
    if f.sections.len() != n_sections {
        return Err(corrupt(format!(
            "expected {n_sections} sections, found {}",
            f.sections.len()
        )));
    }
    Ok(f)
}

// ---------------------------------------------------------------------
// d-DNNF payload codec.
// ---------------------------------------------------------------------

fn encode_dnnf(engine: &DnnfEngine, weights: &[f64], probs: &[f64]) -> Vec<Vec<u8>> {
    let mut s0 = frame::Writer::new();
    let nodes = engine.manager().nodes();
    s0.put_u64(nodes.len() as u64);
    for n in nodes {
        match n {
            DnnfNode::Const(b) => {
                s0.put_u8(0);
                s0.put_u8(*b as u8);
            }
            DnnfNode::Lit { var, positive } => {
                s0.put_u8(1);
                s0.put_u32(var.0);
                s0.put_u8(*positive as u8);
            }
            DnnfNode::And(cs) | DnnfNode::Or(cs) => {
                s0.put_u8(if matches!(n, DnnfNode::And(_)) { 2 } else { 3 });
                s0.put_u64(cs.len() as u64);
                for c in cs.iter() {
                    s0.put_u32(c.index() as u32);
                }
            }
        }
    }
    let mut s1 = frame::Writer::new();
    s1.put_u64(engine.n_targets() as u64);
    for i in 0..engine.n_targets() {
        s1.put_u32(engine.target(i).index() as u32);
    }
    s1.put_u64(engine.names().len() as u64);
    for name in engine.names() {
        s1.put_str(name);
    }
    vec![s0.finish(), s1.finish(), encode_weights(weights, probs)]
}

fn decode_dnnf_nodes(payload: &[u8]) -> Result<Vec<DnnfNode>, String> {
    let mut r = frame::Reader::new(payload);
    let n = r.take_count(2)?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.take_u8()?;
        let node = match tag {
            0 => DnnfNode::Const(r.take_u8()? != 0),
            1 => DnnfNode::Lit {
                var: Var(r.take_u32()?),
                positive: r.take_u8()? != 0,
            },
            2 | 3 => {
                let k = r.take_count(4)?;
                let mut cs = Vec::with_capacity(k);
                for _ in 0..k {
                    cs.push(Dnnf::from_index(r.take_u32()?));
                }
                let cs = cs.into_boxed_slice();
                if tag == 2 {
                    DnnfNode::And(cs)
                } else {
                    DnnfNode::Or(cs)
                }
            }
            t => return Err(format!("unknown d-DNNF node tag {t}")),
        };
        nodes.push(node);
    }
    r.finish()?;
    Ok(nodes)
}

fn decode_targets(payload: &[u8]) -> Result<(Vec<u32>, Vec<String>), String> {
    let mut r = frame::Reader::new(payload);
    let nt = r.take_count(4)?;
    let mut targets = Vec::with_capacity(nt);
    for _ in 0..nt {
        targets.push(r.take_u32()?);
    }
    let nn = r.take_count(4)?;
    let mut names = Vec::with_capacity(nn);
    for _ in 0..nn {
        names.push(r.take_str()?);
    }
    r.finish()?;
    Ok((targets, names))
}

fn encode_weights(weights: &[f64], probs: &[f64]) -> Vec<u8> {
    let mut w = frame::Writer::new();
    w.put_u64(weights.len() as u64);
    for &x in weights {
        w.put_f64_bits(x);
    }
    w.put_u64(probs.len() as u64);
    for &p in probs {
        w.put_f64_bits(p);
    }
    w.finish()
}

fn decode_weights(payload: &[u8]) -> Result<(Vec<f64>, Vec<f64>), String> {
    let mut r = frame::Reader::new(payload);
    let nw = r.take_count(8)?;
    let mut weights = Vec::with_capacity(nw);
    for _ in 0..nw {
        weights.push(r.take_f64_bits()?);
    }
    let np = r.take_count(8)?;
    let mut probs = Vec::with_capacity(np);
    for _ in 0..np {
        probs.push(r.take_f64_bits()?);
    }
    r.finish()?;
    Ok((weights, probs))
}

// ---------------------------------------------------------------------
// OBDD payload codec.
// ---------------------------------------------------------------------

fn encode_obdd(snap: &ObddSnapshot, weights: &[f64], probs: &[f64]) -> Vec<Vec<u8>> {
    let mut s0 = frame::Writer::new();
    s0.put_u64(snap.level_vars.len() as u64);
    for v in &snap.level_vars {
        s0.put_u32(v.0);
    }
    s0.put_u64(snap.blocks.len() as u64);
    for &b in &snap.blocks {
        s0.put_u32(b);
    }
    let mut s1 = frame::Writer::new();
    s1.put_u64(snap.nodes.len() as u64);
    for n in &snap.nodes {
        s1.put_u32(n.level);
        s1.put_u32(n.hi);
        s1.put_u32(n.lo);
    }
    let mut s2 = frame::Writer::new();
    s2.put_u64(snap.targets.len() as u64);
    for &t in &snap.targets {
        s2.put_u32(t);
    }
    s2.put_u64(snap.names.len() as u64);
    for name in &snap.names {
        s2.put_str(name);
    }
    vec![
        s0.finish(),
        s1.finish(),
        s2.finish(),
        encode_weights(weights, probs),
    ]
}

fn decode_obdd_snapshot(
    order: &[u8],
    nodes: &[u8],
    targets: &[u8],
) -> Result<ObddSnapshot, String> {
    let mut r = frame::Reader::new(order);
    let nl = r.take_count(4)?;
    let mut level_vars = Vec::with_capacity(nl);
    for _ in 0..nl {
        level_vars.push(Var(r.take_u32()?));
    }
    let nb = r.take_count(4)?;
    let mut blocks = Vec::with_capacity(nb);
    for _ in 0..nb {
        blocks.push(r.take_u32()?);
    }
    r.finish()?;

    let mut r = frame::Reader::new(nodes);
    let nn = r.take_count(12)?;
    let mut snap_nodes = Vec::with_capacity(nn);
    for _ in 0..nn {
        snap_nodes.push(SnapshotNode {
            level: r.take_u32()?,
            hi: r.take_u32()?,
            lo: r.take_u32()?,
        });
    }
    r.finish()?;

    let (target_refs, names) = decode_targets(targets)?;
    Ok(ObddSnapshot {
        level_vars,
        blocks,
        nodes: snap_nodes,
        targets: target_refs,
        names,
    })
}

// ---------------------------------------------------------------------
// Semantic revalidation: the d-DNNF language invariants.
// ---------------------------------------------------------------------

/// Re-proves the two properties the single-pass model counter relies on
/// and no checksum can vouch for: every `And` is **decomposable**
/// (children mention pairwise disjoint variable sets — checked with
/// per-node support bitsets) and every `Or` is **deterministic** (the
/// two branches of the decision disagree on the decision variable at
/// top level, so they are logically inconsistent).
fn verify_dnnf(man: &DnnfManager) -> Result<(), String> {
    let nodes = man.nodes();
    let n_vars = nodes
        .iter()
        .filter_map(|n| match n {
            DnnfNode::Lit { var, .. } => Some(var.index() + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let words = n_vars.div_ceil(64).max(1);
    // Flat support matrix: support[i*words..][..words] is node i's
    // variable set. Children precede parents (guaranteed by
    // `from_nodes`), so one forward pass suffices.
    let mut support = vec![0u64; nodes.len() * words];
    for i in 0..nodes.len() {
        let (done, rest) = support.split_at_mut(i * words);
        let mine = &mut rest[..words];
        match &nodes[i] {
            DnnfNode::Const(_) => {}
            DnnfNode::Lit { var, .. } => {
                mine[var.index() / 64] |= 1 << (var.index() % 64);
            }
            DnnfNode::And(cs) => {
                for c in cs.iter() {
                    let cw = &done[c.index() * words..c.index() * words + words];
                    for w in 0..words {
                        if mine[w] & cw[w] != 0 {
                            return Err(format!(
                                "AND node {i} is not decomposable: children share variables"
                            ));
                        }
                        mine[w] |= cw[w];
                    }
                }
            }
            DnnfNode::Or(cs) => {
                let a = top_literals(nodes, cs[0]);
                let b = top_literals(nodes, cs[1]);
                let deterministic = a.iter().any(|&(v, p)| b.contains(&(v, !p)));
                if !deterministic {
                    return Err(format!(
                        "OR node {i} is not deterministic: no variable separates its branches"
                    ));
                }
                for c in cs.iter() {
                    let cw = &done[c.index() * words..c.index() * words + words];
                    for w in 0..words {
                        mine[w] |= cw[w];
                    }
                }
            }
        }
    }
    Ok(())
}

/// The literals a sentence asserts at top level: the literal itself, or
/// the literal children of a conjunction. (This is exactly where the
/// compiler places the decision literal of every `Or` branch.)
fn top_literals(nodes: &[DnnfNode], f: Dnnf) -> Vec<(u32, bool)> {
    match &nodes[f.index()] {
        DnnfNode::Lit { var, positive } => vec![(var.0, *positive)],
        DnnfNode::And(cs) => cs
            .iter()
            .filter_map(|&c| match &nodes[c.index()] {
                DnnfNode::Lit { var, positive } => Some((var.0, *positive)),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::{space, Program};

    fn mutex_chain(k: usize) -> Network {
        let mut p = Program::new();
        let vars: Vec<_> = (0..k).map(|_| p.fresh_var()).collect();
        for j in 0..k {
            let mut conj: Vec<_> = vars[..j].iter().map(|&x| Program::nvar(x)).collect();
            conj.push(Program::var(vars[j]));
            let e = p.declare_event(&format!("Phi{j}"), Program::and(conj));
            p.add_target(e);
        }
        Network::build(&p.ground().unwrap()).unwrap()
    }

    fn tmp_store(name: &str) -> ArtifactStore {
        let root =
            std::env::temp_dir().join(format!("enframe-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        ArtifactStore::new(root)
    }

    fn reference(k: usize, p: f64) -> (Network, VarTable, Vec<f64>) {
        let mut prog = Program::new();
        let vars: Vec<_> = (0..k).map(|_| prog.fresh_var()).collect();
        for j in 0..k {
            let mut conj: Vec<_> = vars[..j].iter().map(|&x| Program::nvar(x)).collect();
            conj.push(Program::var(vars[j]));
            let e = prog.declare_event(&format!("Phi{j}"), Program::and(conj));
            prog.add_target(e);
        }
        let g = prog.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::uniform(k, p);
        let want = space::target_probabilities(&g, &vt);
        (net, vt, want)
    }

    #[test]
    fn dnnf_round_trips_bitwise() {
        let (net, vt, want) = reference(7, 0.3);
        let opts = DnnfOptions::default();
        let fp = fingerprint_dnnf(&net, &opts);
        let engine = DnnfEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("dnnf-rt");
        store.save_dnnf(fp, &engine, &vt).unwrap();
        let loaded = store.load_dnnf(fp, 1).unwrap();
        let orig = engine.probabilities(&vt);
        let back = loaded.probabilities(&vt);
        for i in 0..want.len() {
            assert_eq!(orig[i].to_bits(), back[i].to_bits(), "target {i}");
            assert!((back[i] - want[i]).abs() < 1e-9, "target {i} vs reference");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn obdd_round_trips_within_tolerance() {
        let (net, vt, want) = reference(7, 0.45);
        let opts = ObddOptions::default();
        let fp = fingerprint_obdd(&net, &opts);
        let engine = ObddEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("obdd-rt");
        store.save_obdd(fp, &engine, &vt).unwrap();
        let loaded = store.load_obdd(fp).unwrap();
        let back = loaded.probabilities(&vt);
        for i in 0..want.len() {
            assert!((back[i] - want[i]).abs() < 1e-9, "target {i} vs reference");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_artifact_is_a_miss() {
        let store = tmp_store("miss");
        let err = store.load_dnnf(Fingerprint(1), 1).unwrap_err();
        assert!(err.is_not_found(), "got {err}");
    }

    #[test]
    fn wrong_fingerprint_is_structured() {
        let net = mutex_chain(5);
        let vt = VarTable::uniform(5, 0.5);
        let opts = DnnfOptions::default();
        let fp = fingerprint_dnnf(&net, &opts);
        let engine = DnnfEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("wrong-fp");
        let path = store.save_dnnf(fp, &engine, &vt).unwrap();
        // Misfile the artifact under a different key.
        let other = Fingerprint(fp.0 ^ 1);
        std::fs::copy(&path, store.path_for(EngineKind::Dnnf, other)).unwrap();
        match store.load_dnnf(other, 1) {
            Err(StoreError::FingerprintMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, fp);
                assert_eq!(expected, other);
            }
            r => panic!("expected a fingerprint mismatch, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fingerprint_tracks_lineage() {
        let a = mutex_chain(5);
        let b = mutex_chain(6);
        let opts = DnnfOptions::default();
        assert_eq!(fingerprint_dnnf(&a, &opts), fingerprint_dnnf(&a, &opts));
        assert_ne!(fingerprint_dnnf(&a, &opts), fingerprint_dnnf(&b, &opts));
        // Engine kind and order are part of the key.
        assert_ne!(
            fingerprint_network(&a, EngineKind::Dnnf, VarOrder::default(), &[]),
            fingerprint_network(&a, EngineKind::Obdd, VarOrder::default(), &[])
        );
        assert_ne!(
            fingerprint_network(&a, EngineKind::Obdd, VarOrder::Sequential, &[]),
            fingerprint_network(&a, EngineKind::Obdd, VarOrder::Dynamic, &[])
        );
    }

    #[test]
    fn tampered_wmc_digest_is_caught_semantically() {
        // Build a frame that passes every checksum (we re-encode it
        // honestly) but stores a wrong probability: only the fresh
        // WMC sweep can catch it.
        let net = mutex_chain(5);
        let vt = VarTable::uniform(5, 0.5);
        let opts = DnnfOptions::default();
        let fp = fingerprint_dnnf(&net, &opts);
        let engine = DnnfEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("tamper-digest");
        let path = store.save_dnnf(fp, &engine, &vt).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mut f = match frame::Frame::decode(&bytes) {
            Ok(f) => f,
            Err(_) => panic!("fresh artifact must decode"),
        };
        let last = f.sections[2].len() - 8;
        f.sections[2][last..].copy_from_slice(&0.123_f64.to_bits().to_le_bytes());
        std::fs::write(&path, f.encode()).unwrap();
        match store.load_dnnf(fp, 1) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("WMC digest"), "got: {detail}")
            }
            r => panic!("expected corruption, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn verify_rejects_non_decomposable_and() {
        let nodes = vec![
            DnnfNode::Const(true),
            DnnfNode::Const(false),
            DnnfNode::Lit {
                var: Var(0),
                positive: true,
            },
            DnnfNode::Lit {
                var: Var(0),
                positive: false,
            },
            DnnfNode::And(Box::new([Dnnf::from_index(2), Dnnf::from_index(3)])),
        ];
        let man = DnnfManager::from_nodes(nodes).unwrap();
        let err = verify_dnnf(&man).unwrap_err();
        assert!(err.contains("not decomposable"), "got: {err}");
    }

    #[test]
    fn verify_rejects_non_deterministic_or() {
        let nodes = vec![
            DnnfNode::Const(true),
            DnnfNode::Const(false),
            DnnfNode::Lit {
                var: Var(0),
                positive: true,
            },
            DnnfNode::Lit {
                var: Var(1),
                positive: true,
            },
            DnnfNode::Or(Box::new([Dnnf::from_index(2), Dnnf::from_index(3)])),
        ];
        let man = DnnfManager::from_nodes(nodes).unwrap();
        let err = verify_dnnf(&man).unwrap_err();
        assert!(err.contains("not deterministic"), "got: {err}");
    }

    #[test]
    fn out_of_range_weights_do_not_panic() {
        let net = mutex_chain(4);
        let vt = VarTable::uniform(4, 0.5);
        let opts = DnnfOptions::default();
        let fp = fingerprint_dnnf(&net, &opts);
        let engine = DnnfEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("bad-weights");
        let path = store.save_dnnf(fp, &engine, &vt).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mut f = match frame::Frame::decode(&bytes) {
            Ok(f) => f,
            Err(_) => panic!("fresh artifact must decode"),
        };
        // First stored weight → NaN; `VarTable::new` would assert on
        // this, so the store must reject it before construction.
        f.sections[2][8..16].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        std::fs::write(&path, f.encode()).unwrap();
        match store.load_dnnf(fp, 1) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("outside [0, 1]"), "got: {detail}")
            }
            r => panic!("expected corruption, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn wrong_engine_kind_is_corrupt() {
        let net = mutex_chain(4);
        let vt = VarTable::uniform(4, 0.5);
        let opts = ObddOptions::default();
        let fp = fingerprint_obdd(&net, &opts);
        let engine = ObddEngine::compile(&net, &opts).unwrap();
        let store = tmp_store("wrong-kind");
        let path = store.save_obdd(fp, &engine, &vt).unwrap();
        // Present the OBDD artifact as a d-DNNF one.
        std::fs::copy(&path, store.path_for(EngineKind::Dnnf, fp)).unwrap();
        match store.load_dnnf(fp, 1) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("engine kind"), "got: {detail}")
            }
            r => panic!("expected corruption, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}
