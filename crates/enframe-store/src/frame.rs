//! The on-disk frame: a versioned, checksummed container around the
//! engine-specific payload sections, written crash-safely.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   b"ENFSTORE"
//! format version   u32
//! engine kind      u8
//! fingerprint      u64       lineage fingerprint the artifact is keyed by
//! section count    u32
//! per section      u64 len, u32 CRC-32 (IEEE), payload bytes
//! file digest      u64       FxHash fingerprint of every preceding byte
//! ```
//!
//! The per-section CRCs localise corruption ("section 2 CRC mismatch");
//! the whole-file digest catches anything the section framing itself
//! could be lied about (truncated tails, bit flips inside the header,
//! spliced sections with self-consistent CRCs). Neither is
//! cryptographic — the store defends against torn writes and media
//! rot, not adversaries — which is also why the *semantic* revalidation
//! in `lib.rs` runs on every load regardless.

use enframe_core::failpoint::{self, Site};
use enframe_core::fingerprint::FingerprintHasher;
use std::io::{self, Write};
use std::path::Path;

/// File magic; also serves as a quick "is this even ours" check.
pub(crate) const MAGIC: [u8; 8] = *b"ENFSTORE";

/// Current frame format version. Bump on any layout change; loads of
/// other versions fail with `StoreError::VersionMismatch` and fall back
/// to recompilation.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// Domain string for the whole-file digest.
const FILE_DIGEST_DOMAIN: &str = "enframe-store/file";

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `bytes` (IEEE polynomial, the `cksum`/zlib variant).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn file_digest(prefix: &[u8]) -> u64 {
    let mut h = FingerprintHasher::new(FILE_DIGEST_DOMAIN);
    h.write_bytes(prefix);
    h.finish().0
}

// ---------------------------------------------------------------------
// Section payload writer / bounds-checked reader.
// ---------------------------------------------------------------------

/// Builds one section payload.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked reader over one section payload. Every `take_*`
/// returns a description on underflow instead of panicking — the bytes
/// are untrusted.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {} (wanted {} more)", self.pos, n))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn take_f64_bits(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub(crate) fn take_str(&mut self) -> Result<String, String> {
        let n = self.take_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))
    }

    /// A length prefix for `per_item` further bytes each — rejected up
    /// front when the remaining payload cannot possibly hold it, so a
    /// corrupted count cannot drive a huge allocation.
    pub(crate) fn take_count(&mut self, per_item: usize) -> Result<usize, String> {
        let n = self.take_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(per_item.max(1) as u64)
            .is_none_or(|need| need > remaining)
        {
            return Err(format!("implausible count {n} at byte {}", self.pos));
        }
        Ok(n as usize)
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Frame encode / decode.
// ---------------------------------------------------------------------

/// A decoded (or to-be-encoded) frame: the envelope fields plus the raw
/// payload sections.
pub(crate) struct Frame {
    pub(crate) kind: u8,
    pub(crate) fingerprint: u64,
    pub(crate) sections: Vec<Vec<u8>>,
}

/// Why a frame failed to decode; `lib.rs` attaches the path and maps
/// into `StoreError`.
pub(crate) enum FrameError {
    /// The magic matched but the format version is not ours.
    Version {
        /// Version found in the frame header.
        found: u32,
    },
    /// Anything else: bad magic, failed checksum, truncation.
    Corrupt(String),
}

impl Frame {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(s).to_le_bytes());
            out.extend_from_slice(s);
        }
        let digest = file_digest(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        let corrupt = |d: &str| FrameError::Corrupt(d.to_string());
        if bytes.len() < MAGIC.len() + 4 {
            return Err(corrupt("shorter than the magic + version header"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(FrameError::Version { found: version });
        }
        if bytes.len() < 12 + 1 + 8 + 4 + 8 {
            return Err(corrupt("truncated header"));
        }
        // The whole-file digest first: it covers everything, including
        // the section framing the loop below is about to trust.
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if file_digest(body) != stored {
            return Err(corrupt("whole-file digest mismatch"));
        }
        let mut r = Reader::new(&body[12..]);
        let kind = r.take_u8().map_err(FrameError::Corrupt)?;
        let fingerprint = r.take_u64().map_err(FrameError::Corrupt)?;
        let n_sections = r.take_u32().map_err(FrameError::Corrupt)? as usize;
        let mut sections = Vec::new();
        for i in 0..n_sections {
            let len = r.take_count(1).map_err(FrameError::Corrupt)?;
            let crc = r.take_u32().map_err(FrameError::Corrupt)?;
            let payload = r
                .take(len)
                .map_err(|_| corrupt(&format!("section {i} truncated")))?;
            if crc32(payload) != crc {
                return Err(corrupt(&format!("section {i} CRC mismatch")));
            }
            sections.push(payload.to_vec());
        }
        r.finish().map_err(FrameError::Corrupt)?;
        Ok(Frame {
            kind,
            fingerprint,
            sections,
        })
    }
}

// ---------------------------------------------------------------------
// Crash-safe file I/O with failpoints.
// ---------------------------------------------------------------------

fn injected(site: &str) -> io::Error {
    io::Error::other(format!("injected I/O failure (failpoint `{site}`)"))
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory → fsync → atomic rename. A crash (or injected fault) at
/// any point leaves either the old artifact or none — never a torn one
/// under the final name. The temp file is cleaned up on failure.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        if failpoint::hit(Site::StoreWrite) {
            return Err(injected("store_write"));
        }
        f.write_all(bytes)?;
        if failpoint::hit(Site::StoreFsync) {
            return Err(injected("store_fsync"));
        }
        f.sync_all()?;
        drop(f);
        if failpoint::hit(Site::StoreRename) {
            return Err(injected("store_rename"));
        }
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort: an orphaned temp file is harmless (never loaded)
        // but pointless.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a whole artifact file, through the `store_read` failpoint.
pub(crate) fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    if failpoint::hit(Site::StoreRead) {
        return Err(injected("store_read"));
    }
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let f = Frame {
            kind: 1,
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            sections: vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 100]],
        };
        let bytes = f.encode();
        let Ok(g) = Frame::decode(&bytes) else {
            panic!("frame should decode");
        };
        assert_eq!(g.kind, f.kind);
        assert_eq!(g.fingerprint, f.fingerprint);
        assert_eq!(g.sections, f.sections);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let f = Frame {
            kind: 0,
            fingerprint: 42,
            sections: vec![vec![10, 20, 30, 40], vec![7; 9]],
        };
        let bytes = f.encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    Frame::decode(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let f = Frame {
            kind: 0,
            fingerprint: 7,
            sections: vec![vec![1; 33]],
        };
        let bytes = f.encode();
        for n in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..n]).is_err(), "truncation to {n}");
        }
    }

    #[test]
    fn version_skew_is_its_own_error() {
        let f = Frame {
            kind: 0,
            fingerprint: 7,
            sections: vec![],
        };
        let mut bytes = f.encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(FrameError::Version { found: 99 }) => {}
            _ => panic!("expected a version mismatch"),
        }
    }

    #[test]
    fn reader_rejects_implausible_counts() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.take_count(4).is_err());
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("enframe-frame-test-{}", std::process::id()));
        let path = dir.join("a.efs");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _guard = enframe_core::failpoint::override_for_test("store_write:every-1");
        assert!(write_atomic(&path, b"third").is_err());
        // Old contents intact, no temp litter.
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("a.efs.tmp").exists());
        drop(_guard);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
