//! # enframe-network — event networks
//!
//! "The event programs consist of interconnected events, which are
//! represented in an *event network*: a graph representation of the event
//! programs, in which nodes are, e.g., Boolean connectives, comparisons,
//! aggregates, and c-values" (paper §4.1).
//!
//! [`Network::build`] converts a grounded event program into a hash-consed
//! DAG: structurally identical subexpressions are stored **once**
//! ("expressions common to several events are only represented once"),
//! parent links are materialised for bottom-up mask propagation, and the
//! compilation targets are registered. Comparisons whose two operands are
//! the same node fold to constants where the §3.2 semantics allows.
//!
//! The module also offers:
//! * direct evaluation of the network under a complete valuation
//!   ([`Network::eval`]) — used to validate the builder against the
//!   reference evaluator of `enframe-core`;
//! * structural statistics ([`Network::stats`]) for the memory/size
//!   observations of §5;
//! * Graphviz export ([`dot::to_dot`]) mirroring the paper's Figure 5.

pub mod build;
pub mod dot;
pub mod folded;
pub mod node;

pub use build::Network;
pub use folded::{Carry, FoldError, FoldedNetwork, FoldedStats, Region};
pub use node::{Node, NodeId, NodeKind};
