//! Graphviz (DOT) export of event networks — the paper's Figure 5 rendering.

use crate::build::Network;
use crate::node::NodeKind;

/// Renders the network in DOT format. Targets are drawn as double circles;
/// variable leaves as boxes.
pub fn to_dot(net: &Network) -> String {
    let mut out = String::from("digraph event_network {\n  rankdir=BT;\n");
    for (i, node) in net.nodes().iter().enumerate() {
        let label = match (&node.kind, &node.value) {
            (NodeKind::Cond, Some(v)) => format!("(x) {v}"),
            (NodeKind::ConstVal, Some(v)) => format!("{v}"),
            (kind, _) => kind.label(),
        };
        let shape = match node.kind {
            NodeKind::Var(_) => "box",
            _ if net.targets.contains(&crate::node::NodeId(i as u32)) => "doublecircle",
            _ => "ellipse",
        };
        out.push_str(&format!(
            "  n{i} [label=\"{}\", shape={shape}];\n",
            label.replace('"', "'")
        ));
    }
    for (i, node) in net.nodes().iter().enumerate() {
        for c in &node.children {
            out.push_str(&format!("  n{} -> n{i};\n", c.index()));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a *folded* network in DOT format. Regions are drawn as
/// clusters (prologue / body template / epilogue); loop-carry wiring is
/// drawn as dashed edges: `source ⇢ LoopIn` (iteration `t−1 → t`) and
/// `init ⇢ LoopIn` (dotted, iteration 0).
pub fn folded_to_dot(net: &crate::folded::FoldedNetwork) -> String {
    use crate::folded::Region;
    let mut out = String::from("digraph folded_event_network {\n  rankdir=BT;\n");
    for (name, region) in [
        ("prologue", Region::Pro),
        ("body", Region::Body),
        ("epilogue", Region::Epi),
    ] {
        out.push_str(&format!(
            "  subgraph cluster_{name} {{\n    label=\"{name}\";\n"
        ));
        for (i, node) in net.nodes().iter().enumerate() {
            if net.region(crate::node::NodeId(i as u32)) != region {
                continue;
            }
            let label = match (&node.kind, &node.value) {
                (NodeKind::Cond, Some(v)) => format!("(x) {v}"),
                (NodeKind::ConstVal, Some(v)) => format!("{v}"),
                (kind, _) => kind.label(),
            };
            let shape = match node.kind {
                NodeKind::Var(_) => "box",
                NodeKind::LoopIn { .. } => "invtriangle",
                _ if net.targets.contains(&crate::node::NodeId(i as u32)) => "doublecircle",
                _ => "ellipse",
            };
            out.push_str(&format!(
                "    n{i} [label=\"{}\", shape={shape}];\n",
                label.replace('"', "'")
            ));
        }
        out.push_str("  }\n");
    }
    for (i, node) in net.nodes().iter().enumerate() {
        for c in &node.children {
            out.push_str(&format!("  n{} -> n{i};\n", c.index()));
        }
    }
    for carry in &net.carries {
        out.push_str(&format!(
            "  n{} -> n{} [style=dashed, label=\"t-1\"];\n",
            carry.source.index(),
            carry.input.index()
        ));
        out.push_str(&format!(
            "  n{} -> n{} [style=dotted, label=\"init\"];\n",
            carry.init.index(),
            carry.input.index()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::Program;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let e = p.declare_event("E", Program::and([Program::var(x), Program::var(y)]));
        p.add_target(e);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("->"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn folded_dot_draws_regions_and_carries() {
        use crate::folded::FoldedNetwork;
        let mut p = Program::new();
        let x = p.fresh_var();
        let y = p.fresh_var();
        let phi = p.declare_event("Phi", Program::or([Program::var(x), Program::var(y)]));
        let mut prev = p.declare_event("Sinit", Program::var(x));
        let mut boundaries = Vec::new();
        for t in 0..3 {
            boundaries.push(2 + t);
            prev = p.declare_event_at(
                "S",
                &[t as i64],
                Program::and([Program::eref(prev.clone()), Program::eref(phi.clone())]),
            );
        }
        p.add_target(prev);
        let g = p.ground().unwrap();
        let net = FoldedNetwork::build(&g, &boundaries).unwrap();
        let dot = folded_to_dot(&net);
        assert!(dot.contains("cluster_prologue"));
        assert!(dot.contains("cluster_body"));
        assert!(dot.contains("invtriangle"), "LoopIn node rendered");
        assert!(dot.contains("style=dashed"), "carry edge rendered");
        assert!(dot.contains("style=dotted"), "init edge rendered");
    }
}
