//! Folded event networks (paper §4.2).
//!
//! "ENFrame offers two ways of encoding such loops in an event network:
//! *unfolded*, in which case the events at any loop iteration are
//! explicitly stored as distinct nodes in the network, or a more efficient
//! *folded* approach in which all iterations are captured into a single
//! set of nodes."
//!
//! A [`FoldedNetwork`] partitions a grounded event program into three
//! regions:
//!
//! * a **prologue** evaluated once (input lineage, initialisations, and any
//!   leading iterations whose structure diverges from the uniform tail —
//!   constant folding over certain data can make the first iteration
//!   cheaper than the rest, so folding starts at the first iteration from
//!   which all bodies are structurally isomorphic);
//! * one **body template** instantiated logically at every iteration
//!   `t ∈ 0..iters`; references to the previous iteration become
//!   [`NodeKind::LoopIn`] leaves wired by [`Carry`] records ("the network
//!   requires an additional node to perform the transition from iteration
//!   `t` to iteration `t + 1`");
//! * an **epilogue** evaluated once against the last iteration (targets
//!   declared after the loop, e.g. co-occurrence events).
//!
//! The builder discovers the carry structure by structurally *zipping*
//! consecutive iteration bodies of the grounded program: positions where
//! iteration `t + 1` references iteration `t` where iteration `t`
//! referenced its own predecessor become loop carries; positions where all
//! iterations reference the same prologue definition stay
//! iteration-independent. Programs whose iterations are not isomorphic
//! (beyond a foldable suffix) are rejected with [`FoldError::NotFoldable`]
//! — callers fall back to the unfolded [`crate::Network`].
//!
//! Masks for folded networks are two-dimensional (`M[t][v]`, paper §4.2);
//! that machinery lives in `enframe-prob`. This module owns the structure
//! and a direct per-world evaluator used to validate it.

use crate::build::ValueKey;
use crate::node::{Node, NodeId, NodeKind};
use enframe_core::fxhash::{FxHashMap, FxHashSet};
use enframe_core::{CVal, CoreError, Def, DefId, Event, GroundProgram, Valuation, Value, Var};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Why a program could not be folded.
#[derive(Debug, Clone, PartialEq)]
pub enum FoldError {
    /// Fewer than two recorded loop iterations: nothing to fold.
    TooFewIterations {
        /// Number of iteration boundaries supplied.
        found: usize,
    },
    /// The iteration bodies are not structurally isomorphic (no foldable
    /// suffix exists); the payload describes the first obstruction found
    /// for the latest fold-start candidate.
    NotFoldable(String),
    /// A compilation target is not a Boolean event.
    Core(CoreError),
}

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::TooFewIterations { found } => {
                write!(f, "folding needs at least 2 iterations, found {found}")
            }
            FoldError::NotFoldable(why) => write!(f, "program is not foldable: {why}"),
            FoldError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FoldError {}

impl From<CoreError> for FoldError {
    fn from(e: CoreError) -> Self {
        FoldError::Core(e)
    }
}

/// Region of a node in the folded arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Region {
    /// Evaluated once, before the loop; iteration-independent.
    Pro,
    /// Part of the body template, instantiated at every iteration.
    Body,
    /// Evaluated once, against the last iteration.
    Epi,
}

/// Loop-carry wiring of one [`NodeKind::LoopIn`] leaf: at iteration 0 the
/// leaf mirrors `init` (a prologue node); at iteration `t > 0` it mirrors
/// `source` at iteration `t − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Carry {
    /// The `LoopIn` leaf inside the body template.
    pub input: NodeId,
    /// Prologue node providing the iteration-0 value.
    pub init: NodeId,
    /// Node whose previous-iteration value feeds iterations `t ≥ 1`
    /// (usually in the body region; may sit in the prologue when the
    /// carried definition folded to an iteration-independent expression).
    pub source: NodeId,
}

/// Structural statistics of a folded network, including the size of the
/// equivalent unfolded expansion (the §4.2 memory trade-off).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FoldedStats {
    /// Nodes stored (prologue + template + epilogue).
    pub base_nodes: usize,
    /// Prologue nodes.
    pub pro_nodes: usize,
    /// Body-template nodes.
    pub body_nodes: usize,
    /// Epilogue nodes.
    pub epi_nodes: usize,
    /// Loop-carry inputs.
    pub carries: usize,
    /// Folded iterations.
    pub iters: usize,
    /// First folded iteration (earlier iterations live in the prologue).
    pub fold_start: usize,
    /// Size of the logically expanded network (`pro + iters·body + epi`).
    pub expanded_nodes: usize,
}

/// A folded event network: prologue + body template + epilogue.
#[derive(Debug, Clone)]
pub struct FoldedNetwork {
    nodes: Vec<Node>,
    /// Number of input random variables of the underlying program.
    pub n_vars: u32,
    n_pro: usize,
    n_body: usize,
    n_epi: usize,
    /// Number of folded iterations (logical body instantiations).
    pub iters: usize,
    /// Loop-carry wiring.
    pub carries: Vec<Carry>,
    /// Compilation targets (base node ids; body-region targets are read at
    /// the last iteration).
    pub targets: Vec<NodeId>,
    /// Human-readable names of the targets.
    pub target_names: Vec<String>,
    /// First folded iteration: iterations `0..fold_start` of the original
    /// program are absorbed into the prologue.
    pub fold_start: usize,
    var_nodes: Vec<Option<NodeId>>,
    carry_of: FxHashMap<NodeId, (NodeId, NodeId)>,
}

/// How a reference inside the body template resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefClass {
    /// Iteration-independent reference into the prologue.
    Pro,
    /// Same-iteration reference to the body definition at this offset.
    Same(usize),
    /// Previous-iteration reference to the body definition at this offset.
    Carry {
        /// Body-definition offset of the carried value.
        source: usize,
    },
}

/// Structural zipper over two consecutive iteration bodies.
struct Zipper<'a> {
    /// End of the pre-region (`boundaries[fold_start]`).
    pre_end: usize,
    /// Start of the earlier body of the pair.
    p_lo: usize,
    /// Body length.
    l: usize,
    /// Whether this is the recording pair (`t == fold_start`); later pairs
    /// only verify.
    record: bool,
    class: &'a mut BTreeMap<usize, RefClass>,
    seen: FxHashSet<(usize, usize)>,
}

impl Zipper<'_> {
    fn fail(&self, why: impl Into<String>) -> FoldError {
        FoldError::NotFoldable(why.into())
    }

    fn zip_ref(&mut self, a: DefId, b: DefId) -> Result<(), FoldError> {
        let (ai, bi) = (a.index(), b.index());
        let class = if ai == bi && ai < self.pre_end {
            RefClass::Pro
        } else if ai >= self.p_lo && ai < self.p_lo + self.l && bi == ai + self.l {
            RefClass::Same(ai - self.p_lo)
        } else if ai < self.p_lo && bi >= self.p_lo && bi < self.p_lo + self.l {
            let source = bi - self.p_lo;
            if !self.record && ai != self.p_lo - self.l + source {
                return Err(self.fail(format!(
                    "carry chain broken: iteration refs def {ai} where its \
                     predecessor pattern expects def {}",
                    self.p_lo - self.l + source
                )));
            }
            RefClass::Carry { source }
        } else {
            return Err(self.fail(format!(
                "reference pair ({ai}, {bi}) fits no folding rule \
                 (pre_end={}, body=[{}, {}))",
                self.pre_end,
                self.p_lo,
                self.p_lo + self.l
            )));
        };
        if self.record {
            match self.class.entry(ai) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(class);
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    if *e.get() != class {
                        return Err(FoldError::NotFoldable(format!(
                            "def {ai} is referenced with conflicting roles \
                             ({:?} vs {class:?})",
                            e.get()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn zip_def(&mut self, a: &Def, b: &Def) -> Result<(), FoldError> {
        match (a, b) {
            (Def::Event(x), Def::Event(y)) => self.zip_event(x, y),
            (Def::CVal(x), Def::CVal(y)) => self.zip_cval(x, y),
            _ => Err(self.fail("event/c-value definition kinds differ across iterations")),
        }
    }

    fn zip_event(&mut self, a: &Rc<Event>, b: &Rc<Event>) -> Result<(), FoldError> {
        // Pair-memo: shared Rc subtrees would otherwise be re-zipped once
        // per sharing parent.
        if !self
            .seen
            .insert((Rc::as_ptr(a) as usize, Rc::as_ptr(b) as usize))
        {
            return Ok(());
        }
        match (&**a, &**b) {
            (Event::Tru, Event::Tru) | (Event::Fls, Event::Fls) => Ok(()),
            (Event::Var(x), Event::Var(y)) if x == y => Ok(()),
            (Event::Not(x), Event::Not(y)) => self.zip_event(x, y),
            (Event::And(xs), Event::And(ys)) | (Event::Or(xs), Event::Or(ys))
                if xs.len() == ys.len() =>
            {
                for (x, y) in xs.iter().zip(ys) {
                    self.zip_event(x, y)?;
                }
                Ok(())
            }
            (Event::Atom(o1, l1, r1), Event::Atom(o2, l2, r2)) if o1 == o2 => {
                self.zip_cval(l1, l2)?;
                self.zip_cval(r1, r2)
            }
            (Event::Ref(x), Event::Ref(y)) => self.zip_ref(*x, *y),
            _ => Err(self.fail("event structure differs across iterations")),
        }
    }

    fn zip_cval(&mut self, a: &Rc<CVal>, b: &Rc<CVal>) -> Result<(), FoldError> {
        if !self
            .seen
            .insert((Rc::as_ptr(a) as usize, Rc::as_ptr(b) as usize))
        {
            return Ok(());
        }
        match (&**a, &**b) {
            (CVal::Const(u), CVal::Const(v)) if u == v => Ok(()),
            (CVal::Cond(e1, v1), CVal::Cond(e2, v2)) if v1 == v2 => self.zip_event(e1, e2),
            (CVal::Guard(e1, c1), CVal::Guard(e2, c2)) => {
                self.zip_event(e1, e2)?;
                self.zip_cval(c1, c2)
            }
            (CVal::Sum(xs), CVal::Sum(ys)) | (CVal::Prod(xs), CVal::Prod(ys))
                if xs.len() == ys.len() =>
            {
                for (x, y) in xs.iter().zip(ys) {
                    self.zip_cval(x, y)?;
                }
                Ok(())
            }
            (CVal::Inv(x), CVal::Inv(y)) => self.zip_cval(x, y),
            (CVal::Pow(x, r1), CVal::Pow(y, r2)) if r1 == r2 => self.zip_cval(x, y),
            (CVal::Dist(l1, r1), CVal::Dist(l2, r2)) => {
                self.zip_cval(l1, l2)?;
                self.zip_cval(r1, r2)
            }
            (CVal::Ref(x), CVal::Ref(y)) => self.zip_ref(*x, *y),
            _ => Err(self.fail("c-value structure differs across iterations")),
        }
    }
}

/// Phase of the folded builder; selects how `Ref`s resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pro,
    Body,
    Epi,
}

struct FBuilder<'g> {
    gp: &'g GroundProgram,
    nodes: Vec<Node>,
    region_of: Vec<Region>,
    intern: FxHashMap<(NodeKind, Vec<NodeId>, Option<ValueKey>), NodeId>,
    ev_memo: FxHashMap<usize, NodeId>,
    cv_memo: FxHashMap<usize, NodeId>,
    var_nodes: Vec<Option<NodeId>>,
    phase: Phase,
    // Def-resolution tables.
    pre_end: usize,
    body_lo: usize,
    last_body_lo: usize,
    epi_lo: usize,
    class: BTreeMap<usize, RefClass>,
    pro_defs: Vec<NodeId>,
    body_defs: Vec<NodeId>,
    epi_defs: Vec<NodeId>,
    /// LoopIn nodes keyed by `(init def id, source body offset)`.
    loopins: BTreeMap<(usize, usize), NodeId>,
}

impl FBuilder<'_> {
    fn intern(&mut self, kind: NodeKind, children: Vec<NodeId>, value: Option<Value>) -> NodeId {
        let key = (
            kind.clone(),
            children.clone(),
            value.as_ref().map(ValueKey::of),
        );
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            children,
            parents: Vec::new(),
            value,
        });
        self.region_of.push(match self.phase {
            Phase::Pro => Region::Pro,
            Phase::Body => Region::Body,
            Phase::Epi => Region::Epi,
        });
        self.intern.insert(key, id);
        id
    }

    fn const_bool(&mut self, b: bool) -> NodeId {
        self.intern(NodeKind::ConstBool(b), vec![], None)
    }

    fn is_const(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()].kind {
            NodeKind::ConstBool(b) => Some(b),
            _ => None,
        }
    }

    fn enter_phase(&mut self, phase: Phase) {
        self.phase = phase;
        // Pointer-memos must not leak across phases: the same shared
        // subtree resolves its references differently per phase.
        self.ev_memo.clear();
        self.cv_memo.clear();
    }

    fn resolve_ref(&mut self, d: DefId) -> Result<NodeId, FoldError> {
        let i = d.index();
        match self.phase {
            Phase::Pro => Ok(self.pro_defs[i]),
            Phase::Body => match self.class.get(&i) {
                Some(RefClass::Pro) => Ok(self.pro_defs[i]),
                Some(RefClass::Same(off)) => Ok(self.body_defs[*off]),
                Some(RefClass::Carry { source }) => Ok(self.loopin(i, *source)),
                None => Err(FoldError::NotFoldable(format!(
                    "body reference to def {i} was never classified"
                ))),
            },
            Phase::Epi => {
                if i < self.pre_end {
                    Ok(self.pro_defs[i])
                } else if i >= self.last_body_lo && i < self.epi_lo {
                    Ok(self.body_defs[i - self.last_body_lo])
                } else if i >= self.epi_lo {
                    Ok(self.epi_defs[i - self.epi_lo])
                } else {
                    Err(FoldError::NotFoldable(format!(
                        "epilogue references def {i} inside a non-final iteration"
                    )))
                }
            }
        }
    }

    fn loopin(&mut self, init_def: usize, source_off: usize) -> NodeId {
        if let Some(&id) = self.loopins.get(&(init_def, source_off)) {
            return id;
        }
        let boolish = self
            .gp
            .def(DefId((self.body_lo + source_off) as u32))
            .is_event();
        // LoopIn leaves are never interned/merged: each carry keeps its own
        // identity even if two carries were structurally identical.
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::LoopIn { boolish },
            children: Vec::new(),
            parents: Vec::new(),
            value: None,
        });
        self.region_of.push(Region::Body);
        self.loopins.insert((init_def, source_off), id);
        id
    }

    fn event(&mut self, e: &Rc<Event>) -> Result<NodeId, FoldError> {
        let ptr = Rc::as_ptr(e) as usize;
        if let Some(&id) = self.ev_memo.get(&ptr) {
            return Ok(id);
        }
        let id = match &**e {
            Event::Tru => self.const_bool(true),
            Event::Fls => self.const_bool(false),
            Event::Var(v) => {
                let id = self.intern(NodeKind::Var(*v), vec![], None);
                self.var_nodes[v.index()] = Some(id);
                id
            }
            Event::Not(inner) => {
                let c = self.event(inner)?;
                match self.is_const(c) {
                    Some(b) => self.const_bool(!b),
                    None => self.intern(NodeKind::Not, vec![c], None),
                }
            }
            Event::And(parts) => {
                let mut kids = Vec::with_capacity(parts.len());
                let mut folded = None;
                for p in parts {
                    let c = self.event(p)?;
                    match self.is_const(c) {
                        Some(true) => {}
                        Some(false) => {
                            folded = Some(self.const_bool(false));
                            break;
                        }
                        None => kids.push(c),
                    }
                }
                match folded {
                    Some(f) => f,
                    None => match kids.len() {
                        0 => self.const_bool(true),
                        1 => kids[0],
                        _ => self.intern(NodeKind::And, kids, None),
                    },
                }
            }
            Event::Or(parts) => {
                let mut kids = Vec::with_capacity(parts.len());
                let mut folded = None;
                for p in parts {
                    let c = self.event(p)?;
                    match self.is_const(c) {
                        Some(false) => {}
                        Some(true) => {
                            folded = Some(self.const_bool(true));
                            break;
                        }
                        None => kids.push(c),
                    }
                }
                match folded {
                    Some(f) => f,
                    None => match kids.len() {
                        0 => self.const_bool(false),
                        1 => kids[0],
                        _ => self.intern(NodeKind::Or, kids, None),
                    },
                }
            }
            Event::Atom(op, a, b) => {
                let ca = self.cval(a)?;
                let cb = self.cval(b)?;
                // [c θ c] with θ ∈ {≤, ≥, =} is vacuously true (§3.2).
                if ca == cb
                    && matches!(
                        op,
                        enframe_core::CmpOp::Le | enframe_core::CmpOp::Ge | enframe_core::CmpOp::Eq
                    )
                {
                    self.const_bool(true)
                } else {
                    self.intern(NodeKind::Cmp(*op), vec![ca, cb], None)
                }
            }
            Event::Ref(d) => self.resolve_ref(*d)?,
        };
        self.ev_memo.insert(ptr, id);
        Ok(id)
    }

    fn cval(&mut self, c: &Rc<CVal>) -> Result<NodeId, FoldError> {
        let ptr = Rc::as_ptr(c) as usize;
        if let Some(&id) = self.cv_memo.get(&ptr) {
            return Ok(id);
        }
        let id = match &**c {
            CVal::Const(v) => self.intern(NodeKind::ConstVal, vec![], Some(v.clone())),
            CVal::Cond(e, v) => {
                let g = self.event(e)?;
                match self.is_const(g) {
                    Some(true) => self.intern(NodeKind::ConstVal, vec![], Some(v.clone())),
                    Some(false) => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    None => self.intern(NodeKind::Cond, vec![g], Some(v.clone())),
                }
            }
            CVal::Guard(e, inner) => {
                let g = self.event(e)?;
                let ci = self.cval(inner)?;
                match self.is_const(g) {
                    Some(true) => ci,
                    Some(false) => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    None => self.intern(NodeKind::Guard, vec![g, ci], None),
                }
            }
            CVal::Sum(parts) => {
                let kids = parts
                    .iter()
                    .map(|p| self.cval(p))
                    .collect::<Result<Vec<_>, _>>()?;
                match kids.len() {
                    0 => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    1 => kids[0],
                    _ => self.intern(NodeKind::Sum, kids, None),
                }
            }
            CVal::Prod(parts) => {
                let kids = parts
                    .iter()
                    .map(|p| self.cval(p))
                    .collect::<Result<Vec<_>, _>>()?;
                match kids.len() {
                    0 => self.intern(NodeKind::ConstVal, vec![], Some(Value::Num(1.0))),
                    1 => kids[0],
                    _ => self.intern(NodeKind::Prod, kids, None),
                }
            }
            CVal::Inv(inner) => {
                let ci = self.cval(inner)?;
                self.intern(NodeKind::Inv, vec![ci], None)
            }
            CVal::Pow(inner, r) => {
                let ci = self.cval(inner)?;
                self.intern(NodeKind::Pow(*r), vec![ci], None)
            }
            CVal::Dist(a, b) => {
                let ca = self.cval(a)?;
                let cb = self.cval(b)?;
                self.intern(NodeKind::Dist, vec![ca, cb], None)
            }
            CVal::Ref(d) => self.resolve_ref(*d)?,
        };
        self.cv_memo.insert(ptr, id);
        Ok(id)
    }

    fn build_def(&mut self, d: usize) -> Result<NodeId, FoldError> {
        match self.gp.def(DefId(d as u32)) {
            Def::Event(e) => self.event(e),
            Def::CVal(c) => self.cval(c),
        }
    }
}

impl FoldedNetwork {
    /// Folds a grounded event program given the declaration counts at the
    /// start of each outer-loop iteration
    /// (`enframe_translate::Translated::outer_iter_boundaries`).
    ///
    /// The fold start is auto-detected: leading iterations whose structure
    /// diverges from the uniform tail (constant folding over certain data
    /// shrinks early iterations) are absorbed into the prologue. At least
    /// two isomorphic trailing iterations are required.
    pub fn build(gp: &GroundProgram, boundaries: &[usize]) -> Result<FoldedNetwork, FoldError> {
        let k = boundaries.len();
        if k < 2 {
            return Err(FoldError::TooFewIterations { found: k });
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) || *boundaries.last().unwrap() > gp.len() {
            return Err(FoldError::NotFoldable(
                "iteration boundaries are not monotone within the program".into(),
            ));
        }
        let mut last_err = FoldError::NotFoldable("no fold candidate tried".into());
        for s in 0..=k - 2 {
            match Self::try_fold(gp, boundaries, s) {
                Ok(net) => return Ok(net),
                Err(e @ FoldError::Core(_)) => return Err(e),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn try_fold(
        gp: &GroundProgram,
        boundaries: &[usize],
        s: usize,
    ) -> Result<FoldedNetwork, FoldError> {
        let k = boundaries.len();
        let l = boundaries[s + 1] - boundaries[s];
        if l == 0 {
            return Err(FoldError::NotFoldable(
                "loop body declares nothing symbolic".into(),
            ));
        }
        for t in s..k - 1 {
            if boundaries[t + 1] - boundaries[t] != l {
                return Err(FoldError::NotFoldable(format!(
                    "iteration {} declares {} definitions but iteration {s} declares {l}",
                    t + 1,
                    boundaries[t + 1] - boundaries[t]
                )));
            }
        }
        let epi_lo = boundaries[k - 1] + l;
        if epi_lo > gp.len() {
            return Err(FoldError::NotFoldable("last iteration is truncated".into()));
        }
        let pre_end = boundaries[s];

        // Zip consecutive bodies; the first pair records the carry map.
        let mut class = BTreeMap::new();
        for t in s..k - 1 {
            let mut z = Zipper {
                pre_end,
                p_lo: boundaries[t],
                l,
                record: t == s,
                class: &mut class,
                seen: FxHashSet::default(),
            };
            for i in 0..l {
                let a = &gp.defs()[boundaries[t] + i].1;
                let b = &gp.defs()[boundaries[t + 1] + i].1;
                z.zip_def(a, b)?;
            }
        }

        // Carried definitions must keep their kind across the carry.
        for (&init, &cls) in &class {
            if let RefClass::Carry { source } = cls {
                let init_is_event = gp.def(DefId(init as u32)).is_event();
                let src_is_event = gp.def(DefId((boundaries[s] + source) as u32)).is_event();
                if init_is_event != src_is_event {
                    return Err(FoldError::NotFoldable(format!(
                        "carry over body offset {source} mixes event and c-value kinds"
                    )));
                }
            }
        }

        let mut b = FBuilder {
            gp,
            nodes: Vec::with_capacity(gp.len() * 2),
            region_of: Vec::with_capacity(gp.len() * 2),
            intern: FxHashMap::default(),
            ev_memo: FxHashMap::default(),
            cv_memo: FxHashMap::default(),
            var_nodes: vec![None; gp.n_vars as usize],
            phase: Phase::Pro,
            pre_end,
            body_lo: boundaries[s],
            last_body_lo: boundaries[k - 1],
            epi_lo,
            class,
            pro_defs: Vec::with_capacity(pre_end),
            body_defs: Vec::with_capacity(l),
            epi_defs: Vec::with_capacity(gp.len() - epi_lo),
            loopins: BTreeMap::new(),
        };

        // Prologue: everything before the fold start.
        b.enter_phase(Phase::Pro);
        for d in 0..pre_end {
            let id = b.build_def(d)?;
            b.pro_defs.push(id);
        }
        // Body template from the fold-start iteration.
        b.enter_phase(Phase::Body);
        for i in 0..l {
            let id = b.build_def(boundaries[s] + i)?;
            b.body_defs.push(id);
        }
        // Epilogue: declarations after the last iteration.
        b.enter_phase(Phase::Epi);
        for d in epi_lo..gp.len() {
            let id = b.build_def(d)?;
            b.epi_defs.push(id);
        }

        // Resolve carries now that every body definition has a node.
        let mut carries: Vec<Carry> = b
            .loopins
            .iter()
            .map(|(&(init_def, source_off), &input)| Carry {
                input,
                init: b.pro_defs[init_def],
                source: b.body_defs[source_off],
            })
            .collect();

        // Targets resolve like epilogue references (they may name prologue,
        // last-body, or epilogue definitions — but never a middle
        // iteration).
        b.enter_phase(Phase::Epi);
        let mut targets = Vec::with_capacity(gp.targets.len());
        let mut target_names = Vec::with_capacity(gp.targets.len());
        for &t in &gp.targets {
            let node = b.resolve_ref(t)?;
            if !b.nodes[node.index()].is_bool() {
                return Err(FoldError::Core(CoreError::TypeMismatch {
                    ident: gp.name_of(t),
                    expected: "a Boolean compilation target",
                }));
            }
            targets.push(node);
            target_names.push(gp.name_of(t));
        }

        let FBuilder {
            mut nodes,
            mut region_of,
            mut var_nodes,
            ..
        } = b;

        // Region demotion: a node whose children are all iteration-
        // independent is itself iteration-independent (one copy suffices).
        // LoopIn leaves anchor the body region. Children precede parents,
        // so one forward pass reaches the fixpoint.
        for i in 0..nodes.len() {
            if matches!(nodes[i].kind, NodeKind::LoopIn { .. }) {
                region_of[i] = Region::Body;
            } else if nodes[i]
                .children
                .iter()
                .all(|c| region_of[c.index()] == Region::Pro)
            {
                region_of[i] = Region::Pro;
            }
        }

        // Liveness from the targets; a live LoopIn keeps its init and
        // source alive.
        let loopin_wiring: FxHashMap<NodeId, (NodeId, NodeId)> = carries
            .iter()
            .map(|c| (c.input, (c.init, c.source)))
            .collect();
        let mut live = vec![false; nodes.len()];
        let mut stack: Vec<NodeId> = targets.clone();
        for &t in &stack {
            live[t.index()] = true;
        }
        while let Some(id) = stack.pop() {
            let push = |n: NodeId, live: &mut Vec<bool>, stack: &mut Vec<NodeId>| {
                if !live[n.index()] {
                    live[n.index()] = true;
                    stack.push(n);
                }
            };
            for &c in &nodes[id.index()].children {
                push(c, &mut live, &mut stack);
            }
            if let Some(&(init, source)) = loopin_wiring.get(&id) {
                push(init, &mut live, &mut stack);
                push(source, &mut live, &mut stack);
            }
        }

        // Compact: stable partition of the live nodes into
        // [prologue][body][epilogue]; stability preserves the topological
        // order within and across regions (prologue children always precede
        // body parents, body children precede epilogue parents).
        let order_key = |r: Region| match r {
            Region::Pro => 0usize,
            Region::Body => 1,
            Region::Epi => 2,
        };
        let mut remap: Vec<Option<NodeId>> = vec![None; nodes.len()];
        let mut next = 0u32;
        let mut counts = [0usize; 3];
        for (pass, count) in counts.iter_mut().enumerate() {
            for i in 0..nodes.len() {
                if live[i] && order_key(region_of[i]) == pass {
                    remap[i] = Some(NodeId(next));
                    next += 1;
                    *count += 1;
                }
            }
        }
        let (n_pro, n_body, n_epi) = (counts[0], counts[1], counts[2]);
        let mut new_nodes: Vec<Node> = Vec::with_capacity(next as usize);
        new_nodes.resize(
            next as usize,
            Node {
                kind: NodeKind::ConstBool(false),
                children: Vec::new(),
                parents: Vec::new(),
                value: None,
            },
        );
        for (i, node) in nodes.drain(..).enumerate() {
            if let Some(new_id) = remap[i] {
                let mut node = node;
                for c in node.children.iter_mut() {
                    *c = remap[c.index()].expect("live node has live children");
                }
                new_nodes[new_id.index()] = node;
            }
        }
        for t in targets.iter_mut() {
            *t = remap[t.index()].expect("targets are live");
        }
        for slot in var_nodes.iter_mut() {
            *slot = slot.and_then(|v| remap[v.index()]);
        }
        carries.retain(|c| remap[c.input.index()].is_some());
        for c in carries.iter_mut() {
            c.input = remap[c.input.index()].expect("live carry input");
            c.init = remap[c.init.index()].expect("live carry init");
            c.source = remap[c.source.index()].expect("live carry source");
        }

        let mut net = FoldedNetwork {
            nodes: new_nodes,
            n_vars: gp.n_vars,
            n_pro,
            n_body,
            n_epi,
            iters: k - s,
            carries: carries.clone(),
            targets,
            target_names,
            fold_start: s,
            var_nodes,
            carry_of: carries
                .iter()
                .map(|c| (c.input, (c.init, c.source)))
                .collect(),
        };
        net.fill_parents();
        Ok(net)
    }

    fn fill_parents(&mut self) {
        let mut parent_lists: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                parent_lists[c.index()].push(NodeId(i as u32));
            }
        }
        for (node, parents) in self.nodes.iter_mut().zip(parent_lists) {
            node.parents = parents;
        }
    }

    /// The base nodes: `[prologue][body template][epilogue]`, each region
    /// topologically ordered.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A base node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of base nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Prologue size.
    pub fn n_pro(&self) -> usize {
        self.n_pro
    }

    /// Body-template size.
    pub fn n_body(&self) -> usize {
        self.n_body
    }

    /// Epilogue size.
    pub fn n_epi(&self) -> usize {
        self.n_epi
    }

    /// Region of a base node.
    pub fn region(&self, id: NodeId) -> Region {
        let i = id.index();
        if i < self.n_pro {
            Region::Pro
        } else if i < self.n_pro + self.n_body {
            Region::Body
        } else {
            Region::Epi
        }
    }

    /// Size of the logically expanded (unfolded-equivalent) node set.
    pub fn expanded_len(&self) -> usize {
        self.n_pro + self.iters * self.n_body + self.n_epi
    }

    /// The leaf node of variable `v`, if the variable occurs.
    pub fn var_node(&self, v: Var) -> Option<NodeId> {
        self.var_nodes.get(v.index()).copied().flatten()
    }

    /// Carry wiring of a `LoopIn` node: `(init, source)`.
    pub fn carry_of(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.carry_of.get(&id).copied()
    }

    /// Number of parents of each variable's leaf (0 for absent variables);
    /// the static influence measure for variable-order heuristics.
    pub fn var_occurrences(&self) -> Vec<usize> {
        (0..self.n_vars as usize)
            .map(|i| {
                self.var_nodes[i]
                    .map(|n| self.nodes[n.index()].parents.len())
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Structural statistics, including the unfolded-equivalent size.
    pub fn stats(&self) -> FoldedStats {
        FoldedStats {
            base_nodes: self.nodes.len(),
            pro_nodes: self.n_pro,
            body_nodes: self.n_body,
            epi_nodes: self.n_epi,
            carries: self.carries.len(),
            iters: self.iters,
            fold_start: self.fold_start,
            expanded_nodes: self.expanded_len(),
        }
    }

    /// Evaluates the targets under a complete valuation by running the
    /// body template through all iterations — the reference semantics used
    /// to validate folding against the unfolded network.
    pub fn eval(&self, nu: &Valuation) -> Result<Vec<bool>, CoreError> {
        use crate::build::EvalVal;
        let mut pro: Vec<EvalVal> = Vec::with_capacity(self.n_pro);
        let mut layers: Vec<Vec<EvalVal>> = Vec::with_capacity(self.iters);
        let mut epi: Vec<EvalVal> = Vec::with_capacity(self.n_epi);

        let eval_one = |net: &FoldedNetwork,
                        id: NodeId,
                        layer: usize,
                        pro: &[EvalVal],
                        layers: &[Vec<EvalVal>],
                        cur: &[EvalVal],
                        epi: &[EvalVal]|
         -> Result<EvalVal, CoreError> {
            let node = net.node(id);
            let get = |c: NodeId| -> &EvalVal {
                let ci = c.index();
                if ci < net.n_pro {
                    &pro[ci]
                } else if ci < net.n_pro + net.n_body {
                    let off = ci - net.n_pro;
                    // Same-layer reads go through `cur`, which is the layer
                    // being filled (or the last completed layer for the
                    // epilogue).
                    if cur.len() > off {
                        &cur[off]
                    } else {
                        &layers[layer][off]
                    }
                } else {
                    &epi[ci - net.n_pro - net.n_body]
                }
            };
            let as_b = |v: &EvalVal| match v {
                EvalVal::B(b) => *b,
                EvalVal::V(_) => unreachable!("expected Boolean child"),
            };
            let as_v = |v: &EvalVal| match v {
                EvalVal::B(_) => unreachable!("expected numeric child"),
                EvalVal::V(x) => x.clone(),
            };
            Ok(match &node.kind {
                NodeKind::Var(v) => EvalVal::B(nu.get(*v)),
                NodeKind::ConstBool(b) => EvalVal::B(*b),
                NodeKind::Not => EvalVal::B(!as_b(get(node.children[0]))),
                NodeKind::And => EvalVal::B(node.children.iter().all(|&c| as_b(get(c)))),
                NodeKind::Or => EvalVal::B(node.children.iter().any(|&c| as_b(get(c)))),
                NodeKind::Cmp(op) => {
                    let a = as_v(get(node.children[0]));
                    let b = as_v(get(node.children[1]));
                    EvalVal::B(a.compare(*op, &b)?)
                }
                NodeKind::ConstVal => EvalVal::V(node.value.clone().unwrap()),
                NodeKind::Cond => {
                    if as_b(get(node.children[0])) {
                        EvalVal::V(node.value.clone().unwrap())
                    } else {
                        EvalVal::V(Value::Undef)
                    }
                }
                NodeKind::Guard => {
                    if as_b(get(node.children[0])) {
                        EvalVal::V(as_v(get(node.children[1])))
                    } else {
                        EvalVal::V(Value::Undef)
                    }
                }
                NodeKind::Sum => {
                    let mut acc = Value::Undef;
                    for &c in &node.children {
                        acc = acc.add(&as_v(get(c)))?;
                    }
                    EvalVal::V(acc)
                }
                NodeKind::Prod => {
                    let mut acc = Value::Num(1.0);
                    for &c in &node.children {
                        acc = acc.mul(&as_v(get(c)))?;
                    }
                    EvalVal::V(acc)
                }
                NodeKind::Inv => EvalVal::V(as_v(get(node.children[0])).inv()?),
                NodeKind::Pow(r) => EvalVal::V(as_v(get(node.children[0])).pow(*r)?),
                NodeKind::Dist => {
                    let a = as_v(get(node.children[0]));
                    let b = as_v(get(node.children[1]));
                    EvalVal::V(a.dist(&b)?)
                }
                NodeKind::LoopIn { .. } => {
                    let (init, source) = net.carry_of(id).expect("wired LoopIn");
                    if layer == 0 {
                        let i = init.index();
                        debug_assert!(i < net.n_pro, "carry init is a prologue node");
                        pro[i].clone()
                    } else {
                        let si = source.index();
                        if si < net.n_pro {
                            pro[si].clone()
                        } else {
                            layers[layer - 1][si - net.n_pro].clone()
                        }
                    }
                }
            })
        };

        for i in 0..self.n_pro {
            let v = eval_one(self, NodeId(i as u32), 0, &pro, &layers, &[], &epi)?;
            pro.push(v);
        }
        for t in 0..self.iters {
            let mut cur: Vec<EvalVal> = Vec::with_capacity(self.n_body);
            for i in 0..self.n_body {
                let v = eval_one(
                    self,
                    NodeId((self.n_pro + i) as u32),
                    t,
                    &pro,
                    &layers,
                    &cur,
                    &epi,
                )?;
                cur.push(v);
            }
            layers.push(cur);
        }
        let last = self.iters - 1;
        for i in 0..self.n_epi {
            let v = eval_one(
                self,
                NodeId((self.n_pro + self.n_body + i) as u32),
                last,
                &pro,
                &layers,
                &layers[last],
                &epi,
            )?;
            epi.push(v);
        }

        Ok(self
            .targets
            .iter()
            .map(|&t| {
                let i = t.index();
                let v = if i < self.n_pro {
                    &pro[i]
                } else if i < self.n_pro + self.n_body {
                    &layers[last][i - self.n_pro]
                } else {
                    &epi[i - self.n_pro - self.n_body]
                };
                match v {
                    crate::build::EvalVal::B(b) => *b,
                    crate::build::EvalVal::V(_) => {
                        unreachable!("targets are Boolean by construction")
                    }
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Network;
    use enframe_core::program::{SymCVal, SymEvent, ValSrc};
    use enframe_core::{CmpOp, Program};

    /// A Boolean loop over three iterations:
    ///
    /// ```text
    /// pre:  Phi ≡ x0 ∨ x1;  S.init ≡ x2
    /// ∀t:   S.t ≡ (S.{t−1} ∧ Phi) ∨ x3
    /// ```
    fn bool_loop(iters: usize) -> (Program, Vec<usize>) {
        let mut p = Program::new();
        let x0 = p.fresh_var();
        let x1 = p.fresh_var();
        let x2 = p.fresh_var();
        let x3 = p.fresh_var();
        let phi = p.declare_event("Phi", Program::or([Program::var(x0), Program::var(x1)]));
        let mut prev = p.declare_event("Sinit", Program::var(x2));
        let mut boundaries = Vec::new();
        for t in 0..iters {
            boundaries.push(2 + t);
            prev = p.declare_event_at(
                "S",
                &[t as i64],
                Program::or([
                    Program::and([Program::eref(prev.clone()), Program::eref(phi.clone())]),
                    Program::var(x3),
                ]),
            );
        }
        p.add_target(prev);
        (p, boundaries)
    }

    /// A numeric loop carrying a c-value (k-means-shaped):
    ///
    /// ```text
    /// pre:  O0 ≡ x0 ⊗ 1;  O1 ≡ x1 ⊗ 4;  M.init ≡ ⊤ ⊗ 2
    /// ∀t:   A.t ≡ [dist(M.{t−1}, O0) ≤ dist(M.{t−1}, O1)]
    ///       M.t ≡ (A.t ∧ O0) + (¬A.t ∧ O1)
    /// post: T ≡ A.last
    /// ```
    fn numeric_loop(iters: usize) -> (Program, Vec<usize>) {
        let mut p = Program::new();
        let x0 = p.fresh_var();
        let x1 = p.fresh_var();
        let o0 = p.declare_cval(
            "O0",
            Rc::new(SymCVal::Cond(
                Program::var(x0),
                ValSrc::Const(Value::Num(1.0)),
            )),
        );
        let o1 = p.declare_cval(
            "O1",
            Rc::new(SymCVal::Cond(
                Program::var(x1),
                ValSrc::Const(Value::Num(4.0)),
            )),
        );
        let mut m = p.declare_cval(
            "Minit",
            Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(2.0)))),
        );
        let mut boundaries = Vec::new();
        let mut last_a = None;
        for t in 0..iters {
            boundaries.push(3 + 2 * t);
            let a = p.declare_event_at(
                "A",
                &[t as i64],
                Rc::new(SymEvent::Atom(
                    CmpOp::Le,
                    Rc::new(SymCVal::Dist(
                        Program::cref(m.clone()),
                        Program::cref(o0.clone()),
                    )),
                    Rc::new(SymCVal::Dist(
                        Program::cref(m.clone()),
                        Program::cref(o1.clone()),
                    )),
                )),
            );
            m = p.declare_cval_at(
                "M",
                &[t as i64],
                Rc::new(SymCVal::Sum(vec![
                    Rc::new(SymCVal::Guard(
                        Program::eref(a.clone()),
                        Program::cref(o0.clone()),
                    )),
                    Rc::new(SymCVal::Guard(
                        Program::not(Program::eref(a.clone())),
                        Program::cref(o1.clone()),
                    )),
                ])),
            );
            last_a = Some(a);
        }
        // Epilogue: a co-occurrence-style event over the last iteration.
        let t = p.declare_event(
            "T",
            Program::and([Program::eref(last_a.unwrap()), Program::var(x0)]),
        );
        p.add_target(t);
        (p, boundaries)
    }

    use std::rc::Rc;

    fn check_fold_matches_unfolded(p: &Program, boundaries: &[usize], n_vars: usize) {
        let g = p.ground().unwrap();
        let unfolded = Network::build(&g).unwrap();
        let folded = FoldedNetwork::build(&g, boundaries).unwrap();
        assert_eq!(folded.target_names, unfolded.target_names);
        for code in 0..(1u64 << n_vars) {
            let nu = Valuation::from_code(n_vars, code);
            let want = unfolded.eval(&nu).unwrap();
            let got = folded.eval(&nu).unwrap();
            assert_eq!(got, want, "world {code:b}");
        }
    }

    #[test]
    fn boolean_loop_folds_and_evaluates() {
        let (p, boundaries) = bool_loop(3);
        check_fold_matches_unfolded(&p, &boundaries, 4);
    }

    #[test]
    fn numeric_loop_with_epilogue_folds() {
        let (p, boundaries) = numeric_loop(4);
        check_fold_matches_unfolded(&p, &boundaries, 2);
    }

    #[test]
    fn folding_discovers_carry_structure() {
        let (p, boundaries) = bool_loop(3);
        let g = p.ground().unwrap();
        let folded = FoldedNetwork::build(&g, &boundaries).unwrap();
        assert_eq!(folded.iters, 3);
        assert_eq!(folded.fold_start, 0);
        assert_eq!(folded.carries.len(), 1, "one loop-carried event");
        let c = folded.carries[0];
        assert_eq!(folded.region(c.input), Region::Body);
        assert_eq!(folded.region(c.init), Region::Pro);
        assert!(matches!(
            folded.node(c.input).kind,
            NodeKind::LoopIn { boolish: true }
        ));
    }

    #[test]
    fn folded_is_smaller_than_unfolded_expansion() {
        let (p, boundaries) = numeric_loop(6);
        let g = p.ground().unwrap();
        let unfolded = Network::build(&g).unwrap();
        let folded = FoldedNetwork::build(&g, &boundaries).unwrap();
        let stats = folded.stats();
        assert!(
            stats.base_nodes < unfolded.len(),
            "folded {} vs unfolded {}",
            stats.base_nodes,
            unfolded.len()
        );
        // The expansion accounts one body instance per iteration.
        assert_eq!(
            stats.expanded_nodes,
            stats.pro_nodes + 6 * stats.body_nodes + stats.epi_nodes
        );
    }

    #[test]
    fn too_few_iterations_rejected() {
        let (p, _) = bool_loop(1);
        let g = p.ground().unwrap();
        assert!(matches!(
            FoldedNetwork::build(&g, &[2]),
            Err(FoldError::TooFewIterations { found: 1 })
        ));
    }

    #[test]
    fn divergent_first_iteration_moves_fold_start() {
        // Iteration 0 declares one extra event; iterations 1.. are uniform.
        let mut p = Program::new();
        let x0 = p.fresh_var();
        let x1 = p.fresh_var();
        let phi = p.declare_event("Phi", Program::or([Program::var(x0), Program::var(x1)]));
        let mut boundaries = Vec::new();
        // Iteration 0: two declarations.
        boundaries.push(1);
        let extra = p.declare_event("Extra", Program::var(x0));
        let mut prev = p.declare_event_at(
            "S",
            &[0],
            Program::and([Program::eref(extra), Program::eref(phi.clone())]),
        );
        for t in 1..4 {
            boundaries.push(p.items.len());
            prev = p.declare_event_at(
                "S",
                &[t as i64],
                Program::and([Program::eref(prev.clone()), Program::eref(phi.clone())]),
            );
        }
        p.add_target(prev);
        let g = p.ground().unwrap();
        let folded = FoldedNetwork::build(&g, &boundaries).unwrap();
        assert_eq!(folded.fold_start, 1, "iteration 0 absorbed into prologue");
        assert_eq!(folded.iters, 3);
        let unfolded = Network::build(&g).unwrap();
        for code in 0..4u64 {
            let nu = Valuation::from_code(2, code);
            assert_eq!(folded.eval(&nu).unwrap(), unfolded.eval(&nu).unwrap());
        }
    }

    #[test]
    fn per_iteration_constants_are_rejected() {
        // S.t ≡ [⊤ ⊗ t ≤ x ⊗ 1]: the constant differs per iteration.
        let mut p = Program::new();
        let x = p.fresh_var();
        let mut boundaries = Vec::new();
        let mut last = None;
        for t in 0..3 {
            boundaries.push(p.items.len());
            last = Some(p.declare_event_at(
                "S",
                &[t as i64],
                Rc::new(SymEvent::Atom(
                    CmpOp::Le,
                    Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(t as f64)))),
                    Rc::new(SymCVal::Cond(
                        Program::var(x),
                        ValSrc::Const(Value::Num(1.0)),
                    )),
                )),
            ));
        }
        p.add_target(last.unwrap());
        let g = p.ground().unwrap();
        assert!(matches!(
            FoldedNetwork::build(&g, &boundaries),
            Err(FoldError::NotFoldable(_))
        ));
    }

    #[test]
    fn iteration_independent_body_parts_are_demoted_to_prologue() {
        // The body recomputes Phi ∧ x0 every iteration; it must be stored
        // once (prologue), not per layer.
        let mut p = Program::new();
        let x0 = p.fresh_var();
        let x1 = p.fresh_var();
        let phi = p.declare_event("Phi", Program::or([Program::var(x0), Program::var(x1)]));
        let init = p.declare_event("Sinit", Program::var(x1));
        let mut prev = init;
        let mut boundaries = Vec::new();
        for t in 0..3 {
            boundaries.push(p.items.len());
            // Fixed ≡ Phi ∧ x0 has no carry dependency.
            let fixed = p.declare_event_at(
                "Fixed",
                &[t as i64],
                Program::and([Program::eref(phi.clone()), Program::var(x0)]),
            );
            prev = p.declare_event_at(
                "S",
                &[t as i64],
                Program::or([Program::eref(prev.clone()), Program::eref(fixed)]),
            );
        }
        p.add_target(prev);
        let g = p.ground().unwrap();
        let folded = FoldedNetwork::build(&g, &boundaries).unwrap();
        // Body holds only the LoopIn and the Or that consumes it.
        assert_eq!(folded.n_body(), 2, "stats: {:?}", folded.stats());
        check_fold_matches_unfolded(&p, &boundaries, 2);
    }

    #[test]
    fn dead_definitions_are_pruned() {
        let (mut p, boundaries) = bool_loop(3);
        // A dangling declaration nothing depends on.
        let x9 = p.fresh_var();
        p.declare_event("Dead", Program::var(x9));
        let g = p.ground().unwrap();
        let folded = FoldedNetwork::build(&g, &boundaries).unwrap();
        assert!(folded.var_node(x9).is_none(), "dead var leaf pruned");
    }

    #[test]
    fn parents_are_consistent() {
        let (p, boundaries) = numeric_loop(3);
        let g = p.ground().unwrap();
        let net = FoldedNetwork::build(&g, &boundaries).unwrap();
        for (i, n) in net.nodes().iter().enumerate() {
            for &c in &n.children {
                assert!(
                    c.index() < i,
                    "child {c:?} does not precede parent {i} (topological order)"
                );
                assert!(net.node(c).parents.contains(&NodeId(i as u32)));
            }
        }
    }

    #[test]
    fn regions_are_contiguous_and_ordered() {
        let (p, boundaries) = numeric_loop(3);
        let g = p.ground().unwrap();
        let net = FoldedNetwork::build(&g, &boundaries).unwrap();
        let mut last = Region::Pro;
        for i in 0..net.len() {
            let r = net.region(NodeId(i as u32));
            assert!(r >= last, "regions out of order at {i}");
            last = r;
        }
        assert_eq!(net.n_pro() + net.n_body() + net.n_epi(), net.len());
    }
}
