//! Nodes of an event network.

use enframe_core::{CmpOp, Value, Var};

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operator of a network node.
///
/// Boolean-valued: `Var`, `ConstBool`, `Not`, `And`, `Or`, `Cmp`.
/// Numeric-valued (c-values): the rest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An input Boolean random variable (leaf).
    Var(Var),
    /// Boolean constant leaf.
    ConstBool(bool),
    /// Negation (1 Boolean child).
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Comparison atom between two numeric children.
    Cmp(CmpOp),
    /// Constant c-value leaf; payload in [`Node::value`].
    ConstVal,
    /// `Φ ⊗ v`: child 0 is the guard, payload in [`Node::value`].
    Cond,
    /// `Φ ∧ c`: child 0 is the guard (Boolean), child 1 the c-value.
    Guard,
    /// N-ary sum of c-values (`Σ`); undefined summands act as identity.
    Sum,
    /// N-ary product of c-values (`Π`); undefined factors absorb.
    Prod,
    /// Multiplicative inverse (1 child).
    Inv,
    /// Integer power (1 child).
    Pow(i32),
    /// Distance between two c-values.
    Dist,
    /// Loop-carry input of a *folded* network (paper §4.2): a leaf in the
    /// body template whose value at iteration `t` is the value of its
    /// carry source at iteration `t − 1` (or of the initialisation node at
    /// `t = 0`). The wiring lives in [`crate::folded::Carry`]; unfolded
    /// networks never contain this kind.
    LoopIn {
        /// Whether the carried value is Boolean (else a c-value).
        boolish: bool,
    },
}

impl NodeKind {
    /// Whether nodes of this kind are Boolean-valued.
    pub fn is_bool(&self) -> bool {
        matches!(
            self,
            NodeKind::Var(_)
                | NodeKind::ConstBool(_)
                | NodeKind::Not
                | NodeKind::And
                | NodeKind::Or
                | NodeKind::Cmp(_)
                | NodeKind::LoopIn { boolish: true }
        )
    }

    /// Short operator label for display/DOT.
    pub fn label(&self) -> String {
        match self {
            NodeKind::Var(v) => format!("x{}", v.0),
            NodeKind::ConstBool(true) => "T".into(),
            NodeKind::ConstBool(false) => "F".into(),
            NodeKind::Not => "!".into(),
            NodeKind::And => "AND".into(),
            NodeKind::Or => "OR".into(),
            NodeKind::Cmp(op) => format!("{op}"),
            NodeKind::ConstVal => "const".into(),
            NodeKind::Cond => "(x)".into(),
            NodeKind::Guard => "/\\".into(),
            NodeKind::Sum => "SUM".into(),
            NodeKind::Prod => "PROD".into(),
            NodeKind::Inv => "inv".into(),
            NodeKind::Pow(r) => format!("pow{r}"),
            NodeKind::Dist => "dist".into(),
            NodeKind::LoopIn { .. } => "O".into(),
        }
    }
}

/// A node: operator, children, parents (filled by the builder), and an
/// optional constant payload (for `ConstVal`/`Cond`).
#[derive(Debug, Clone)]
pub struct Node {
    /// Operator.
    pub kind: NodeKind,
    /// Children in argument order.
    pub children: Vec<NodeId>,
    /// Parents (every node that lists this node among its children).
    pub parents: Vec<NodeId>,
    /// Constant payload for `ConstVal` and `Cond`.
    pub value: Option<Value>,
}

impl Node {
    /// Whether this node is Boolean-valued.
    pub fn is_bool(&self) -> bool {
        self.kind.is_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(NodeKind::Var(Var(0)).is_bool());
        assert!(NodeKind::Cmp(CmpOp::Le).is_bool());
        assert!(!NodeKind::Sum.is_bool());
        assert!(!NodeKind::Cond.is_bool());
    }

    #[test]
    fn labels() {
        assert_eq!(NodeKind::Var(Var(3)).label(), "x3");
        assert_eq!(NodeKind::Pow(2).label(), "pow2");
        assert_eq!(NodeKind::Cmp(CmpOp::Le).label(), "<=");
    }
}
