//! Building hash-consed event networks from grounded event programs.

use crate::node::{Node, NodeId, NodeKind};
use enframe_core::fxhash::FxHashMap;
use enframe_core::{CVal, CmpOp, CoreError, Def, Event, GroundProgram, Valuation, Value, Var};

/// Hashable stand-in for a constant payload (bit-exact).
#[derive(PartialEq, Eq, Hash, Clone)]
pub(crate) enum ValueKey {
    Undef,
    Num(u64),
    Point(Vec<u64>),
}

impl ValueKey {
    pub(crate) fn of(v: &Value) -> ValueKey {
        match v {
            Value::Undef => ValueKey::Undef,
            Value::Num(x) => ValueKey::Num(x.to_bits()),
            Value::Point(p) => ValueKey::Point(p.iter().map(|x| x.to_bits()).collect()),
        }
    }
}

/// A value computed for a node during direct evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalVal {
    /// Boolean node value.
    B(bool),
    /// Numeric node value.
    V(Value),
}

/// Structural statistics of a network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total child edges.
    pub edges: usize,
    /// Boolean-valued nodes.
    pub bool_nodes: usize,
    /// Numeric-valued nodes.
    pub numeric_nodes: usize,
    /// Input-variable leaves present.
    pub var_nodes: usize,
    /// Largest fan-in.
    pub max_fanin: usize,
    /// Largest fan-out.
    pub max_fanout: usize,
}

/// A hash-consed event network.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    /// Number of input random variables of the underlying program.
    pub n_vars: u32,
    /// Compilation-target nodes (Boolean), in registration order.
    pub targets: Vec<NodeId>,
    /// Human-readable names of the targets.
    pub target_names: Vec<String>,
    var_nodes: Vec<Option<NodeId>>,
    def_nodes: Vec<NodeId>,
}

struct Builder {
    nodes: Vec<Node>,
    intern: FxHashMap<(NodeKind, Vec<NodeId>, Option<ValueKey>), NodeId>,
    ev_memo: FxHashMap<*const Event, NodeId>,
    cv_memo: FxHashMap<*const CVal, NodeId>,
    def_nodes: Vec<NodeId>,
    var_nodes: Vec<Option<NodeId>>,
}

impl Network {
    /// Builds the network for a grounded program. All compilation targets
    /// must be Boolean definitions.
    pub fn build(gp: &GroundProgram) -> Result<Network, CoreError> {
        let mut b = Builder {
            nodes: Vec::with_capacity(gp.len() * 2),
            intern: FxHashMap::default(),
            ev_memo: FxHashMap::default(),
            cv_memo: FxHashMap::default(),
            def_nodes: Vec::with_capacity(gp.len()),
            var_nodes: vec![None; gp.n_vars as usize],
        };
        for (_, def) in gp.defs() {
            let id = match def {
                Def::Event(e) => b.event(e),
                Def::CVal(c) => b.cval(c),
            };
            b.def_nodes.push(id);
        }
        let mut targets = Vec::with_capacity(gp.targets.len());
        let mut target_names = Vec::with_capacity(gp.targets.len());
        for &t in &gp.targets {
            let node = b.def_nodes[t.index()];
            if !b.nodes[node.index()].is_bool() {
                return Err(CoreError::TypeMismatch {
                    ident: gp.name_of(t),
                    expected: "a Boolean compilation target",
                });
            }
            targets.push(node);
            target_names.push(gp.name_of(t));
        }
        let mut net = Network {
            nodes: b.nodes,
            n_vars: gp.n_vars,
            targets,
            target_names,
            var_nodes: b.var_nodes,
            def_nodes: b.def_nodes,
        };
        net.prune_to_targets();
        net.fill_parents();
        Ok(net)
    }

    /// Drops nodes that no target (transitively) depends on. Declarations
    /// that are never consumed — e.g. final medoid c-values when only
    /// `Centre` events are targeted — would otherwise be masked on every
    /// branch for nothing.
    fn prune_to_targets(&mut self) {
        let n = self.nodes.len();
        let mut live = vec![false; n];
        let mut stack: Vec<NodeId> = self.targets.clone();
        for &t in &stack {
            live[t.index()] = true;
        }
        while let Some(id) = stack.pop() {
            for &c in &self.nodes[id.index()].children {
                if !live[c.index()] {
                    live[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        let n_live = live.iter().filter(|&&l| l).count();
        if n_live == n {
            return;
        }
        // Compact, preserving (topological) order.
        let mut remap: Vec<Option<NodeId>> = vec![None; n];
        let mut nodes = Vec::with_capacity(n_live);
        for (i, node) in self.nodes.drain(..).enumerate() {
            if live[i] {
                remap[i] = Some(NodeId(nodes.len() as u32));
                let mut node = node;
                for c in node.children.iter_mut() {
                    *c = remap[c.index()].expect("children precede parents");
                }
                nodes.push(node);
            }
        }
        self.nodes = nodes;
        for t in self.targets.iter_mut() {
            *t = remap[t.index()].expect("targets are live");
        }
        for slot in self.var_nodes.iter_mut() {
            *slot = slot.and_then(|v| remap[v.index()]);
        }
        for d in self.def_nodes.iter_mut() {
            // Pruned definitions map to the u32::MAX sentinel, surfaced as
            // `None` by `def_node`.
            *d = remap[d.index()].unwrap_or(NodeId(u32::MAX));
        }
    }

    fn fill_parents(&mut self) {
        let mut parent_lists: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                parent_lists[c.index()].push(NodeId(i as u32));
            }
        }
        for (node, parents) in self.nodes.iter_mut().zip(parent_lists) {
            node.parents = parents;
        }
    }

    /// The nodes, in topological order (children before parents).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node representing a grounded definition, or `None` when the
    /// definition was pruned (no target depends on it).
    pub fn def_node(&self, def_index: usize) -> Option<NodeId> {
        let id = self.def_nodes[def_index];
        (id.0 != u32::MAX).then_some(id)
    }

    /// The leaf node of variable `v`, if the variable occurs.
    pub fn var_node(&self, v: Var) -> Option<NodeId> {
        self.var_nodes.get(v.index()).copied().flatten()
    }

    /// Number of parents of each variable's leaf (0 for absent variables) —
    /// the static "influence" measure used by variable-order heuristics.
    pub fn var_occurrences(&self) -> Vec<usize> {
        (0..self.n_vars as usize)
            .map(|i| {
                self.var_nodes[i]
                    .map(|n| self.nodes[n.index()].parents.len())
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Structural statistics.
    pub fn stats(&self) -> NetworkStats {
        let mut s = NetworkStats {
            nodes: self.nodes.len(),
            ..NetworkStats::default()
        };
        for n in &self.nodes {
            s.edges += n.children.len();
            if n.is_bool() {
                s.bool_nodes += 1;
            } else {
                s.numeric_nodes += 1;
            }
            if matches!(n.kind, NodeKind::Var(_)) {
                s.var_nodes += 1;
            }
            s.max_fanin = s.max_fanin.max(n.children.len());
            s.max_fanout = s.max_fanout.max(n.parents.len());
        }
        s
    }

    /// Directly evaluates every node under a complete valuation, returning
    /// the per-node values. Used to validate the builder and in tests.
    pub fn eval_all(&self, nu: &Valuation) -> Result<Vec<EvalVal>, CoreError> {
        let mut out: Vec<EvalVal> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let val = match &node.kind {
                NodeKind::Var(v) => EvalVal::B(nu.get(*v)),
                NodeKind::ConstBool(b) => EvalVal::B(*b),
                NodeKind::Not => EvalVal::B(!as_b(&out, node.children[0])),
                NodeKind::And => EvalVal::B(node.children.iter().all(|&c| as_b(&out, c))),
                NodeKind::Or => EvalVal::B(node.children.iter().any(|&c| as_b(&out, c))),
                NodeKind::Cmp(op) => {
                    let a = as_v(&out, node.children[0]);
                    let b = as_v(&out, node.children[1]);
                    EvalVal::B(a.compare(*op, b)?)
                }
                NodeKind::ConstVal => EvalVal::V(node.value.clone().unwrap()),
                NodeKind::Cond => {
                    if as_b(&out, node.children[0]) {
                        EvalVal::V(node.value.clone().unwrap())
                    } else {
                        EvalVal::V(Value::Undef)
                    }
                }
                NodeKind::Guard => {
                    if as_b(&out, node.children[0]) {
                        EvalVal::V(as_v(&out, node.children[1]).clone())
                    } else {
                        EvalVal::V(Value::Undef)
                    }
                }
                NodeKind::Sum => {
                    let mut acc = Value::Undef;
                    for &c in &node.children {
                        acc = acc.add(as_v(&out, c))?;
                    }
                    EvalVal::V(acc)
                }
                NodeKind::Prod => {
                    let mut acc = Value::Num(1.0);
                    for &c in &node.children {
                        acc = acc.mul(as_v(&out, c))?;
                    }
                    EvalVal::V(acc)
                }
                NodeKind::Inv => EvalVal::V(as_v(&out, node.children[0]).inv()?),
                NodeKind::Pow(r) => EvalVal::V(as_v(&out, node.children[0]).pow(*r)?),
                NodeKind::Dist => {
                    let a = as_v(&out, node.children[0]);
                    let b = as_v(&out, node.children[1]);
                    EvalVal::V(a.dist(b)?)
                }
                NodeKind::LoopIn { .. } => {
                    unreachable!("LoopIn nodes only occur in folded networks")
                }
            };
            out.push(val);
        }
        Ok(out)
    }

    /// Evaluates only the targets under a complete valuation.
    pub fn eval(&self, nu: &Valuation) -> Result<Vec<bool>, CoreError> {
        let all = self.eval_all(nu)?;
        Ok(self
            .targets
            .iter()
            .map(|&t| match &all[t.index()] {
                EvalVal::B(b) => *b,
                EvalVal::V(_) => unreachable!("targets are Boolean by construction"),
            })
            .collect())
    }
}

fn as_b(out: &[EvalVal], id: NodeId) -> bool {
    match &out[id.index()] {
        EvalVal::B(b) => *b,
        EvalVal::V(_) => unreachable!("expected Boolean child"),
    }
}

fn as_v(out: &[EvalVal], id: NodeId) -> &Value {
    match &out[id.index()] {
        EvalVal::V(v) => v,
        EvalVal::B(_) => unreachable!("expected numeric child"),
    }
}

impl Builder {
    fn intern(&mut self, kind: NodeKind, children: Vec<NodeId>, value: Option<Value>) -> NodeId {
        let key = (
            kind.clone(),
            children.clone(),
            value.as_ref().map(ValueKey::of),
        );
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            children,
            parents: Vec::new(),
            value,
        });
        self.intern.insert(key, id);
        id
    }

    fn const_bool(&mut self, b: bool) -> NodeId {
        self.intern(NodeKind::ConstBool(b), vec![], None)
    }

    fn is_const(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()].kind {
            NodeKind::ConstBool(b) => Some(b),
            _ => None,
        }
    }

    fn event(&mut self, e: &Event) -> NodeId {
        let ptr = e as *const Event;
        if let Some(&id) = self.ev_memo.get(&ptr) {
            return id;
        }
        let id = match e {
            Event::Tru => self.const_bool(true),
            Event::Fls => self.const_bool(false),
            Event::Var(v) => {
                let id = self.intern(NodeKind::Var(*v), vec![], None);
                self.var_nodes[v.index()] = Some(id);
                id
            }
            Event::Not(inner) => {
                let c = self.event(inner);
                match self.is_const(c) {
                    Some(b) => self.const_bool(!b),
                    None => self.intern(NodeKind::Not, vec![c], None),
                }
            }
            Event::And(parts) => {
                let mut kids = Vec::with_capacity(parts.len());
                let mut folded = None;
                for p in parts {
                    let c = self.event(p);
                    match self.is_const(c) {
                        Some(true) => {}
                        Some(false) => {
                            folded = Some(self.const_bool(false));
                            break;
                        }
                        None => kids.push(c),
                    }
                }
                match folded {
                    Some(f) => f,
                    None => match kids.len() {
                        0 => self.const_bool(true),
                        1 => kids[0],
                        _ => self.intern(NodeKind::And, kids, None),
                    },
                }
            }
            Event::Or(parts) => {
                let mut kids = Vec::with_capacity(parts.len());
                let mut folded = None;
                for p in parts {
                    let c = self.event(p);
                    match self.is_const(c) {
                        Some(false) => {}
                        Some(true) => {
                            folded = Some(self.const_bool(true));
                            break;
                        }
                        None => kids.push(c),
                    }
                }
                match folded {
                    Some(f) => f,
                    None => match kids.len() {
                        0 => self.const_bool(false),
                        1 => kids[0],
                        _ => self.intern(NodeKind::Or, kids, None),
                    },
                }
            }
            Event::Atom(op, a, b) => {
                let ca = self.cval(a);
                let cb = self.cval(b);
                // [c θ c] with θ ∈ {≤, ≥, =} is vacuously true: equal when
                // defined, true when undefined.
                if ca == cb && matches!(op, CmpOp::Le | CmpOp::Ge | CmpOp::Eq) {
                    self.const_bool(true)
                } else {
                    self.intern(NodeKind::Cmp(*op), vec![ca, cb], None)
                }
            }
            Event::Ref(d) => self.def_nodes[d.index()],
        };
        self.ev_memo.insert(ptr, id);
        id
    }

    fn cval(&mut self, c: &CVal) -> NodeId {
        let ptr = c as *const CVal;
        if let Some(&id) = self.cv_memo.get(&ptr) {
            return id;
        }
        let id = match c {
            CVal::Const(v) => self.intern(NodeKind::ConstVal, vec![], Some(v.clone())),
            CVal::Cond(e, v) => {
                let g = self.event(e);
                match self.is_const(g) {
                    Some(true) => self.intern(NodeKind::ConstVal, vec![], Some(v.clone())),
                    Some(false) => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    None => self.intern(NodeKind::Cond, vec![g], Some(v.clone())),
                }
            }
            CVal::Guard(e, inner) => {
                let g = self.event(e);
                let ci = self.cval(inner);
                match self.is_const(g) {
                    Some(true) => ci,
                    Some(false) => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    None => self.intern(NodeKind::Guard, vec![g, ci], None),
                }
            }
            CVal::Sum(parts) => {
                let kids: Vec<NodeId> = parts.iter().map(|p| self.cval(p)).collect();
                match kids.len() {
                    0 => self.intern(NodeKind::ConstVal, vec![], Some(Value::Undef)),
                    1 => kids[0],
                    _ => self.intern(NodeKind::Sum, kids, None),
                }
            }
            CVal::Prod(parts) => {
                let kids: Vec<NodeId> = parts.iter().map(|p| self.cval(p)).collect();
                match kids.len() {
                    0 => self.intern(NodeKind::ConstVal, vec![], Some(Value::Num(1.0))),
                    1 => kids[0],
                    _ => self.intern(NodeKind::Prod, kids, None),
                }
            }
            CVal::Inv(inner) => {
                let ci = self.cval(inner);
                self.intern(NodeKind::Inv, vec![ci], None)
            }
            CVal::Pow(inner, r) => {
                let ci = self.cval(inner);
                self.intern(NodeKind::Pow(*r), vec![ci], None)
            }
            CVal::Dist(a, b) => {
                let ca = self.cval(a);
                let cb = self.cval(b);
                self.intern(NodeKind::Dist, vec![ca, cb], None)
            }
            CVal::Ref(d) => self.def_nodes[d.index()],
        };
        self.cv_memo.insert(ptr, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::program::{SymCVal, ValSrc};
    use enframe_core::{space, Program, VarTable};
    use std::rc::Rc;

    /// Example 1 lineage with a couple of derived events.
    fn example_program() -> Program {
        let mut p = Program::new();
        let x1 = p.fresh_var();
        let x2 = p.fresh_var();
        let x3 = p.fresh_var();
        let x4 = p.fresh_var();
        let o0 = p.declare_event("Phi0", Program::or([Program::var(x1), Program::var(x3)]));
        let o1 = p.declare_event("Phi1", Program::var(x2));
        let o2 = p.declare_event("Phi2", Program::var(x3));
        let _o3 = p.declare_event("Phi3", Program::and([Program::nvar(x2), Program::var(x4)]));
        let both = p.declare_event(
            "Both12",
            Program::and([Program::eref(o1.clone()), Program::eref(o2.clone())]),
        );
        // A shared subexpression: Phi0 ∨ Phi1 used twice.
        let shared = Program::or([Program::eref(o0.clone()), Program::eref(o1.clone())]);
        let d1 = p.declare_event("D1", shared.clone());
        let d2 = p.declare_event("D2", Program::and([shared, Program::eref(o2.clone())]));
        p.add_target(both);
        p.add_target(d1);
        p.add_target(d2);
        p
    }

    #[test]
    fn build_and_eval_matches_reference() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        for code in 0..16u64 {
            let nu = Valuation::from_code(4, code);
            let net_vals = net.eval(&nu).unwrap();
            for (k, &t) in g.targets.iter().enumerate() {
                let want = g.eval_bool(t, &nu).unwrap();
                assert_eq!(net_vals[k], want, "target {k} world {code:04b}");
            }
        }
    }

    #[test]
    fn hash_consing_dedupes_shared_subexpressions() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        // The Or(Phi0, Phi1) subterm of D1 and D2 must be a single node:
        // node count stays small.
        let or_nodes = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Or))
            .count();
        // Phi0 (x1∨x3) and the shared (Phi0∨Phi1): exactly two Or nodes.
        assert_eq!(or_nodes, 2);
    }

    #[test]
    fn identical_literal_nodes_are_shared() {
        let mut p = Program::new();
        let x = p.fresh_var();
        let a = p.declare_event("A", Program::and([Program::var(x), Program::var(x)]));
        p.add_target(a);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        // And with duplicate children of one shared Var node.
        let var_nodes = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Var(_)))
            .count();
        assert_eq!(var_nodes, 1);
    }

    #[test]
    fn constant_folding_of_guards() {
        let mut p = Program::new();
        let _x = p.fresh_var();
        p.declare_cval(
            "C",
            Rc::new(SymCVal::Guard(
                Rc::new(enframe_core::program::SymEvent::Tru),
                Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(3.0)))),
            )),
        );
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        // Guard(true, 3.0) folds to the constant.
        assert!(net
            .nodes()
            .iter()
            .all(|n| !matches!(n.kind, NodeKind::Guard)));
    }

    #[test]
    fn self_comparison_folds_true() {
        use enframe_core::program::SymEvent;
        let mut p = Program::new();
        let x = p.fresh_var();
        let c = Rc::new(SymCVal::Cond(
            Program::var(x),
            ValSrc::Const(Value::Num(1.0)),
        ));
        let a = p.declare_event("A", Rc::new(SymEvent::Atom(CmpOp::Le, c.clone(), c)));
        p.add_target(a);
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let t = net.targets[0];
        assert!(matches!(net.node(t).kind, NodeKind::ConstBool(true)));
    }

    #[test]
    fn parents_are_consistent() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        for (i, n) in net.nodes().iter().enumerate() {
            for &c in &n.children {
                assert!(
                    net.node(c).parents.contains(&NodeId(i as u32)),
                    "child {c:?} missing parent {i}"
                );
            }
            for &pa in &n.parents {
                assert!(
                    net.node(pa).children.contains(&NodeId(i as u32)),
                    "parent {pa:?} missing child {i}"
                );
            }
        }
    }

    #[test]
    fn topological_order_children_first() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        for (i, n) in net.nodes().iter().enumerate() {
            for &c in &n.children {
                assert!(c.index() < i, "child {c:?} not before parent {i}");
            }
        }
    }

    #[test]
    fn var_occurrences_counts_parents() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let occ = net.var_occurrences();
        assert_eq!(occ.len(), 4);
        // x2 feeds Phi1 (used in Both12, D1's Or, ...) and Not(x2) in Phi3.
        assert!(occ[1] >= 2);
    }

    #[test]
    fn cval_targets_rejected() {
        let mut p = Program::new();
        let _ = p.fresh_var();
        let c = p.declare_cval("C", Rc::new(SymCVal::Lit(ValSrc::Const(Value::Num(1.0)))));
        p.add_target(c);
        let g = p.ground().unwrap();
        assert!(Network::build(&g).is_err());
    }

    #[test]
    fn stats_reflect_structure() {
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let s = net.stats();
        assert_eq!(s.nodes, net.len());
        assert!(s.edges > 0);
        // Phi3 (over x4) feeds no target and is pruned with its variable.
        assert_eq!(s.var_nodes, 3);
        assert_eq!(s.bool_nodes, s.nodes - s.numeric_nodes);
    }

    #[test]
    fn probability_via_enumeration_of_network() {
        // Cross-check: probability computed by enumerating network evals
        // equals the core brute-force probability.
        let p = example_program();
        let g = p.ground().unwrap();
        let net = Network::build(&g).unwrap();
        let vt = VarTable::new(vec![0.3, 0.5, 0.7, 0.9]);
        let want = space::target_probabilities(&g, &vt);
        let mut got = vec![0.0; net.targets.len()];
        for (nu, pr) in space::worlds(&vt) {
            let vals = net.eval(&nu).unwrap();
            for (k, v) in vals.iter().enumerate() {
                if *v {
                    got[k] += pr;
                }
            }
        }
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
