//! Canned output extractors for the naïve baseline, matching the
//! compilation targets used by ENFrame's engines.

use enframe_lang::{Interp, LangError, RtValue};

fn get_bool(v: &RtValue) -> Result<bool, LangError> {
    v.as_bool()
        .ok_or_else(|| LangError::Runtime(format!("expected Boolean output, found {}", v.kind())))
}

fn get_matrix<'a>(
    interp: &'a Interp,
    var: &str,
    rows: usize,
    cols: usize,
) -> Result<Vec<&'a RtValue>, LangError> {
    let arr = interp
        .get(var)
        .ok_or_else(|| LangError::Runtime(format!("variable `{var}` not found")))?;
    let mut out = Vec::with_capacity(rows * cols);
    match arr {
        RtValue::Array(rs) if rs.len() == rows => {
            for r in rs {
                match r {
                    RtValue::Array(cs) if cs.len() == cols => out.extend(cs.iter()),
                    other => {
                        return Err(LangError::Runtime(format!(
                            "`{var}` row has unexpected shape: {other:?}"
                        )))
                    }
                }
            }
        }
        other => {
            return Err(LangError::Runtime(format!(
                "`{var}` has unexpected shape: {other:?}"
            )))
        }
    }
    Ok(out)
}

/// Extracts a `rows × cols` Boolean matrix variable (e.g. `InCl`, `Centre`)
/// flattened row-major — matching
/// `enframe_translate::targets::add_all_bool_targets` order.
pub fn bool_matrix(
    var: &str,
    rows: usize,
    cols: usize,
) -> impl FnMut(&Interp) -> Result<Vec<bool>, LangError> + '_ {
    move |interp| {
        get_matrix(interp, var, rows, cols)?
            .into_iter()
            .map(get_bool)
            .collect()
    }
}

/// Extracts the single co-occurrence output "objects `l1` and `l2` share a
/// cluster" from the membership matrix `var` with `k` clusters.
pub fn same_cluster(
    var: &str,
    k: usize,
    l1: usize,
    l2: usize,
) -> impl FnMut(&Interp) -> Result<Vec<bool>, LangError> + '_ {
    move |interp| {
        let arr = interp
            .get(var)
            .ok_or_else(|| LangError::Runtime(format!("variable `{var}` not found")))?;
        let mut both = false;
        match arr {
            RtValue::Array(rows) if rows.len() >= k => {
                for row in rows.iter().take(k) {
                    match row {
                        RtValue::Array(cs) => {
                            let a = get_bool(&cs[l1])?;
                            let b = get_bool(&cs[l2])?;
                            if a && b {
                                both = true;
                            }
                        }
                        other => {
                            return Err(LangError::Runtime(format!(
                                "`{var}` row has unexpected shape: {other:?}"
                            )))
                        }
                    }
                }
            }
            other => {
                return Err(LangError::Runtime(format!(
                    "`{var}` has unexpected shape: {other:?}"
                )))
            }
        }
        Ok(vec![both])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_lang::{parse, Interp, SimpleEnv};

    fn mini_interp(src: &str) -> (SimpleEnv, enframe_lang::UserProgram) {
        (SimpleEnv::default(), parse(src).unwrap())
    }

    #[test]
    fn bool_matrix_flattens_row_major() {
        let (env, prog) = mini_interp(
            "M = [None] * 2\nfor i in range(0,2):\n    M[i] = [None] * 2\n    for j in range(0,2):\n        M[i][j] = i == j\n",
        );
        let mut interp = Interp::new(&env);
        interp.run(&prog).unwrap();
        let got = bool_matrix("M", 2, 2)(&interp).unwrap();
        assert_eq!(got, vec![true, false, false, true]);
    }

    #[test]
    fn shape_mismatch_reported() {
        let (env, prog) = mini_interp("M = [None] * 1\nM[0] = 1\n");
        let mut interp = Interp::new(&env);
        interp.run(&prog).unwrap();
        assert!(bool_matrix("M", 2, 2)(&interp).is_err());
        assert!(bool_matrix("Missing", 1, 1)(&interp).is_err());
    }
}
