//! # enframe-worlds — the naïve possible-worlds baseline
//!
//! "The naïve approach computes an equivalent clustering by explicitly
//! iterating over all possible worlds" (paper §5). This crate implements
//! that baseline: for every valuation ν of the input variables it
//! materialises the corresponding world (absent objects read as undefined),
//! runs the deterministic interpreter on the user program, extracts the
//! Boolean outputs of interest, and accumulates `Pr(ν)` per output.
//!
//! Because the interpreter shares the undefined-aware semantics of the
//! event language, the naïve baseline computes **exactly** the same
//! probabilities as ENFrame's compilation engines — the paper's "golden
//! standard" equivalence — just exponentially slower in the number of
//! variables. The workspace integration tests assert this equivalence; the
//! figure benchmarks measure the performance gap (up to six orders of
//! magnitude in the paper).

pub mod extract;

use enframe_core::{Valuation, VarTable};
use enframe_lang::{Interp, LangError, UserProgram};
use enframe_translate::{world_env, ProbEnv};

/// Hard cap on the number of variables the baseline will enumerate
/// (2^24 worlds ≈ 17M interpreter runs).
pub const MAX_NAIVE_VARS: usize = 24;

/// Result of a naïve run.
#[derive(Debug, Clone)]
pub struct NaiveResult {
    /// Probability per extracted output, in extractor order.
    pub probabilities: Vec<f64>,
    /// Number of worlds enumerated.
    pub worlds: u64,
}

/// Runs the user program in every possible world and accumulates the
/// probability of each Boolean output produced by `extract`.
///
/// `extract` is called on the interpreter state after each per-world run
/// and must return the same number of Booleans for every world.
pub fn naive_probabilities(
    program: &UserProgram,
    env: &ProbEnv,
    vt: &VarTable,
    mut extract: impl FnMut(&Interp) -> Result<Vec<bool>, LangError>,
) -> Result<NaiveResult, LangError> {
    let n = vt.len();
    if n > MAX_NAIVE_VARS {
        return Err(LangError::Runtime(format!(
            "naïve enumeration of {n} variables exceeds the cap of {MAX_NAIVE_VARS}"
        )));
    }
    let mut probabilities: Vec<f64> = Vec::new();
    let mut first = true;
    let mut worlds = 0u64;
    for code in 0..(1u64 << n) {
        let nu = Valuation::from_code(n, code);
        let p = vt.world_prob(&nu);
        worlds += 1;
        if p == 0.0 {
            continue;
        }
        let wenv = world_env(env, &nu);
        let mut interp = Interp::new(&wenv);
        interp.run(program)?;
        let outputs = extract(&interp)?;
        if first {
            probabilities = vec![0.0; outputs.len()];
            first = false;
        } else if outputs.len() != probabilities.len() {
            return Err(LangError::Runtime(format!(
                "extractor returned {} outputs, expected {}",
                outputs.len(),
                probabilities.len()
            )));
        }
        for (acc, b) in probabilities.iter_mut().zip(outputs) {
            if b {
                *acc += p;
            }
        }
    }
    Ok(NaiveResult {
        probabilities,
        worlds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enframe_core::{Event, Var};
    use enframe_lang::{parse, programs};
    use enframe_translate::env::{clustering_env, ProbObjects};
    use std::rc::Rc;

    fn tiny() -> (enframe_lang::UserProgram, ProbEnv, VarTable) {
        let objs = ProbObjects::new(
            vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]],
            vec![
                Rc::new(Event::Tru),
                Event::var(Var(0)),
                Event::var(Var(1)),
                Rc::new(Event::Tru),
            ],
        );
        let env = clustering_env(objs, 2, 2, vec![0, 3], 2);
        let ast = parse(programs::K_MEDOIDS).unwrap();
        (ast, env, VarTable::new(vec![0.7, 0.4]))
    }

    #[test]
    fn membership_probabilities_sum_to_one_per_object() {
        let (ast, env, vt) = tiny();
        let res = naive_probabilities(&ast, &env, &vt, extract::bool_matrix("InCl", 2, 4)).unwrap();
        assert_eq!(res.worlds, 4);
        assert_eq!(res.probabilities.len(), 8);
        for l in 0..4 {
            let s = res.probabilities[l] + res.probabilities[4 + l];
            assert!((s - 1.0).abs() < 1e-9, "object {l}: {s}");
        }
    }

    #[test]
    fn certain_world_gives_zero_one_probabilities() {
        let objs = ProbObjects::certain(vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]]);
        let env = clustering_env(objs, 2, 2, vec![0, 3], 0);
        let ast = parse(programs::K_MEDOIDS).unwrap();
        let vt = VarTable::new(vec![]);
        let res = naive_probabilities(&ast, &env, &vt, extract::bool_matrix("InCl", 2, 4)).unwrap();
        assert!(res.probabilities.iter().all(|&p| p == 0.0 || p == 1.0));
    }

    #[test]
    fn variable_cap_enforced() {
        let (ast, env, _) = tiny();
        let vt = VarTable::uniform(MAX_NAIVE_VARS + 1, 0.5);
        assert!(naive_probabilities(&ast, &env, &vt, extract::bool_matrix("InCl", 2, 4)).is_err());
    }

    #[test]
    fn same_cluster_extractor() {
        let (ast, env, vt) = tiny();
        let res =
            naive_probabilities(&ast, &env, &vt, extract::same_cluster("InCl", 2, 0, 1)).unwrap();
        assert_eq!(res.probabilities.len(), 1);
        // Objects 0 and 1 are adjacent: always co-clustered (see the
        // translate crate's same_cluster test).
        assert!((res.probabilities[0] - 1.0).abs() < 1e-9);
    }
}
