//! Pretty-printer for user programs.
//!
//! Renders an [`UserProgram`] back to concrete syntax that re-parses to the
//! same AST (round-trip property-tested below). Useful for program
//! transformations, error reporting, and persisting generated programs.

use crate::ast::*;

/// Renders a program as source text (4-space indentation).
pub fn print_program(p: &UserProgram) -> String {
    let mut out = String::new();
    for s in &p.stmts {
        print_stmt(s, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::TupleAssign { names, call } => {
            out.push('(');
            out.push_str(&names.join(", "));
            out.push_str(") = ");
            out.push_str(&call.to_string());
            out.push('\n');
        }
        Stmt::ExtAssign { name, call } => {
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&call.to_string());
            out.push('\n');
        }
        Stmt::Assign { target, expr } => {
            print_lval(target, out);
            out.push_str(" = ");
            print_expr(expr, out);
            out.push('\n');
        }
        Stmt::For { var, lo, hi, body } => {
            out.push_str("for ");
            out.push_str(var);
            out.push_str(" in range(");
            print_expr(lo, out);
            out.push_str(", ");
            print_expr(hi, out);
            out.push_str("):\n");
            for b in body {
                print_stmt(b, level + 1, out);
            }
        }
    }
}

fn print_lval(lv: &Lval, out: &mut String) {
    match lv {
        Lval::Name(n) => out.push_str(n),
        Lval::Index(base, idx) => {
            print_lval(base, out);
            out.push('[');
            print_expr(idx, out);
            out.push(']');
        }
    }
}

fn cmp_str(op: Cmp) -> &'static str {
    match op {
        Cmp::Le => "<=",
        Cmp::Lt => "<",
        Cmp::Ge => ">=",
        Cmp::Gt => ">",
        Cmp::Eq => "==",
    }
}

fn reduce_name(kind: ReduceKind) -> &'static str {
    match kind {
        ReduceKind::And => "reduce_and",
        ReduceKind::Or => "reduce_or",
        ReduceKind::Sum => "reduce_sum",
        ReduceKind::Mult => "reduce_mult",
        ReduceKind::Count => "reduce_count",
    }
}

fn tie_name(kind: TieKind) -> &'static str {
    match kind {
        TieKind::One => "breakTies",
        TieKind::Dim1 => "breakTies1",
        TieKind::Dim2 => "breakTies2",
    }
}

/// Prints an expression. Sub-expressions of binary operators are
/// parenthesised, which is always re-parseable (precedence-exact printing
/// would be prettier; correctness matters more here).
fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(i) => {
            if *i < 0 {
                out.push_str(&format!("(0 - {})", -i));
            } else {
                out.push_str(&i.to_string());
            }
        }
        Expr::Float(f) => {
            let s = if f.fract() == 0.0 && f.is_finite() && *f >= 0.0 {
                format!("{f:.1}")
            } else if *f < 0.0 {
                return out.push_str(&format!("(0.0 - {})", -f));
            } else {
                format!("{f}")
            };
            out.push_str(&s);
        }
        Expr::Bool(b) => out.push_str(if *b { "True" } else { "False" }),
        Expr::Name(n) => out.push_str(n),
        Expr::Index(base, idx) => {
            print_expr(base, out);
            out.push('[');
            print_expr(idx, out);
            out.push(']');
        }
        Expr::ArrayInit(n) => {
            out.push_str("[None] * ");
            paren(n, out);
        }
        Expr::Compare(op, a, b) => {
            paren(a, out);
            out.push(' ');
            out.push_str(cmp_str(*op));
            out.push(' ');
            paren(b, out);
        }
        Expr::Add(a, b) => {
            paren(a, out);
            out.push_str(" + ");
            paren(b, out);
        }
        Expr::Sub(a, b) => {
            paren(a, out);
            out.push_str(" - ");
            paren(b, out);
        }
        Expr::Mul(a, b) => {
            paren(a, out);
            out.push_str(" * ");
            paren(b, out);
        }
        Expr::Neg(a) => {
            out.push_str("(0 - ");
            print_expr(a, out);
            out.push(')');
        }
        Expr::Reduce(kind, compr) => {
            out.push_str(reduce_name(*kind));
            out.push_str("([");
            print_expr(&compr.expr, out);
            out.push_str(" for ");
            out.push_str(&compr.var);
            out.push_str(" in range(");
            print_expr(&compr.lo, out);
            out.push_str(", ");
            print_expr(&compr.hi, out);
            out.push(')');
            if let Some(cond) = &compr.cond {
                out.push_str(" if ");
                print_expr(cond, out);
            }
            out.push_str("])");
        }
        Expr::Pow(a, r) => {
            out.push_str("pow(");
            print_expr(a, out);
            out.push_str(", ");
            print_expr(r, out);
            out.push(')');
        }
        Expr::Invert(a) => {
            out.push_str("invert(");
            print_expr(a, out);
            out.push(')');
        }
        Expr::Dist(a, b) => {
            out.push_str("dist(");
            print_expr(a, out);
            out.push_str(", ");
            print_expr(b, out);
            out.push(')');
        }
        Expr::ScalarMult(a, b) => {
            out.push_str("scalar_mult(");
            print_expr(a, out);
            out.push_str(", ");
            print_expr(b, out);
            out.push(')');
        }
        Expr::BreakTies(kind, a) => {
            out.push_str(tie_name(*kind));
            out.push('(');
            print_expr(a, out);
            out.push(')');
        }
    }
}

/// Prints a sub-expression with parentheses when it is a binary form.
fn paren(e: &Expr, out: &mut String) {
    let needs = matches!(
        e,
        Expr::Compare(..) | Expr::Add(..) | Expr::Sub(..) | Expr::Mul(..) | Expr::ArrayInit(..)
    );
    if needs {
        out.push('(');
        print_expr(e, out);
        out.push(')');
    } else {
        print_expr(e, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::programs;

    fn round_trip(src: &str) {
        let ast1 = parse(src).expect("original parses");
        let printed = print_program(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program fails to parse: {e}\n{printed}"));
        assert_eq!(ast1, ast2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_the_paper_programs() {
        round_trip(programs::K_MEDOIDS);
        round_trip(programs::K_MEANS);
        round_trip(programs::MCL);
    }

    #[test]
    fn round_trips_assorted_constructs() {
        round_trip("V = 2\nW = V\nM = [None] * 3\nM[1] = True\n");
        round_trip("x = reduce_count([1 for i in range(0,5) if i > 2])\n");
        round_trip("y = pow(2, 3) * invert(4)\n");
        round_trip("B = [None] * 2\nB[0] = True\nB[1] = False\nB = breakTies(B)\n");
        round_trip("for i in range(0,2):\n    for j in range(0,2):\n        z = i + j\n");
        round_trip("n = 0 - 3\nm = 1 - n\n");
    }

    #[test]
    fn printed_kmedoids_is_executable() {
        use crate::interp::{Interp, SimpleEnv};
        use crate::rtvalue::RtValue;
        let ast = parse(programs::K_MEDOIDS).unwrap();
        let printed = print_program(&ast);
        let reparsed = parse(&printed).unwrap();
        let env = SimpleEnv {
            data: vec![
                RtValue::Array(vec![
                    RtValue::point(&[0.0]),
                    RtValue::point(&[1.0]),
                    RtValue::point(&[5.0]),
                    RtValue::point(&[6.0]),
                ]),
                RtValue::Int(4),
            ],
            params: vec![RtValue::Int(2), RtValue::Int(3)],
            init_value: RtValue::Array(vec![RtValue::point(&[1.0]), RtValue::point(&[6.0])]),
        };
        let mut a = Interp::new(&env);
        a.run(&ast).unwrap();
        let mut b = Interp::new(&env);
        b.run(&reparsed).unwrap();
        assert_eq!(a.get("M"), b.get("M"));
        assert_eq!(a.get("InCl"), b.get("InCl"));
    }
}
