//! Indentation-aware lexer for the user language.
//!
//! Python conventions implemented:
//! * `#` comments run to end of line;
//! * blank lines produce no tokens;
//! * leading whitespace produces `Indent`/`Dedent` tokens against an
//!   indentation stack (spaces only; tabs are rejected for sanity);
//! * newlines inside `(...)`/`[...]` are joined implicitly.

use crate::error::{LangError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `True`
    True,
    /// `False`
    False,
    /// `None`
    NoneLit,
    /// `for`
    For,
    /// `in`
    In,
    /// `if`
    If,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// End of logical line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input (after closing all indents).
    Eof,
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Tokenizes `src` into a vector of spanned tokens ending with `Eof`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut bracket_depth = 0usize;

    for (line_no, raw_line) in src.lines().enumerate() {
        let line_no = line_no as u32 + 1;
        // Strip comments (no string literals in the language).
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        if line.trim().is_empty() && bracket_depth == 0 {
            continue;
        }

        // Indentation handling only outside brackets.
        if bracket_depth == 0 {
            let mut indent = 0usize;
            for ch in line.chars() {
                match ch {
                    ' ' => indent += 1,
                    '\t' => {
                        return Err(LangError::lex(
                            Pos {
                                line: line_no,
                                col: indent as u32 + 1,
                            },
                            "tab characters are not allowed in indentation",
                        ))
                    }
                    _ => break,
                }
            }
            let current = *indents.last().unwrap();
            let pos = Pos {
                line: line_no,
                col: 1,
            };
            if indent > current {
                indents.push(indent);
                out.push(Spanned {
                    tok: Tok::Indent,
                    pos,
                });
            } else {
                while indent < *indents.last().unwrap() {
                    indents.pop();
                    out.push(Spanned {
                        tok: Tok::Dedent,
                        pos,
                    });
                }
                if indent != *indents.last().unwrap() {
                    return Err(LangError::lex(
                        pos,
                        "inconsistent dedent: no enclosing block at this indentation",
                    ));
                }
            }
        }

        lex_line(line, line_no, &mut out, &mut bracket_depth)?;

        if bracket_depth == 0 {
            // Emit a newline after each logical line (unless the physical
            // line had no tokens, which cannot happen here because blank
            // lines were skipped).
            let col = line.chars().count() as u32 + 1;
            out.push(Spanned {
                tok: Tok::Newline,
                pos: Pos { line: line_no, col },
            });
        }
    }

    if bracket_depth != 0 {
        return Err(LangError::lex(
            Pos { line: 0, col: 0 },
            "unterminated bracket at end of input",
        ));
    }
    let end = Pos {
        line: src.lines().count() as u32 + 1,
        col: 1,
    };
    while indents.len() > 1 {
        indents.pop();
        out.push(Spanned {
            tok: Tok::Dedent,
            pos: end,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: end,
    });
    Ok(out)
}

fn lex_line(
    line: &str,
    line_no: u32,
    out: &mut Vec<Spanned>,
    bracket_depth: &mut usize,
) -> Result<(), LangError> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let pos = Pos {
            line: line_no,
            col: i as u32 + 1,
        };
        match c {
            ' ' => {
                i += 1;
            }
            '(' => {
                *bracket_depth += 1;
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                *bracket_depth = bracket_depth
                    .checked_sub(1)
                    .ok_or_else(|| LangError::lex(pos, "unmatched closing parenthesis"))?;
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
                i += 1;
            }
            '[' => {
                *bracket_depth += 1;
                out.push(Spanned {
                    tok: Tok::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                *bracket_depth = bracket_depth
                    .checked_sub(1)
                    .ok_or_else(|| LangError::lex(pos, "unmatched closing bracket"))?;
                out.push(Spanned {
                    tok: Tok::RBracket,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
                i += 1;
            }
            ':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    pos,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    tok: Tok::Minus,
                    pos,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    pos,
                });
                i += 1;
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Assign,
                        pos,
                    });
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Tok::Le, pos });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, pos });
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Tok::Ge, pos });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, pos });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < chars.len() && chars[i] == '.' {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    is_float = true;
                    i += 1;
                    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        LangError::lex(pos, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        LangError::lex(pos, format!("invalid integer literal `{text}`"))
                    })?)
                };
                out.push(Spanned { tok, pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.as_str() {
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "if" => Tok::If,
                    "True" => Tok::True,
                    "False" => Tok::False,
                    "None" => Tok::NoneLit,
                    _ => Tok::Ident(word),
                };
                out.push(Spanned { tok, pos });
            }
            other => {
                return Err(LangError::lex(
                    pos,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("V = 2"),
            vec![
                Tok::Ident("V".into()),
                Tok::Assign,
                Tok::Int(2),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = toks("# header\n\nV = 1 # trailing\n");
        assert_eq!(
            t,
            vec![
                Tok::Ident("V".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indent_dedent_blocks() {
        let src = "for i in range(0,2):\n    M = 1\nV = 2\n";
        let t = toks(src);
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
        let i_pos = t.iter().position(|x| *x == Tok::Indent).unwrap();
        let d_pos = t.iter().position(|x| *x == Tok::Dedent).unwrap();
        assert!(i_pos < d_pos);
    }

    #[test]
    fn nested_dedents_close_in_order() {
        let src = "for i in range(0,2):\n  for j in range(0,2):\n    M = 1\nV = 2\n";
        let t = toks(src);
        let dedents = t.iter().filter(|x| **x == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let src = "M = reduce_and(\n    [1 for i in range(0,2)])\n";
        let t = toks(src);
        // Only one Newline (at the very end of the logical line).
        let newlines = t.iter().filter(|x| **x == Tok::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!t.contains(&Tok::Indent));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b >= c < d > e == f")[..11],
            [
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::Lt,
                Tok::Ident("d".into()),
                Tok::Gt,
                Tok::Ident("e".into()),
                Tok::EqEq,
                Tok::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn float_and_int_literals() {
        assert_eq!(toks("x = 1.5")[2], Tok::Float(1.5));
        assert_eq!(toks("x = 1e3")[2], Tok::Float(1000.0));
        assert_eq!(toks("x = 42")[2], Tok::Int(42));
    }

    #[test]
    fn rejects_tabs_in_indentation() {
        assert!(matches!(
            lex("for i in range(0,1):\n\tx = 1\n"),
            Err(LangError::Lex { .. })
        ));
    }

    #[test]
    fn rejects_inconsistent_dedent() {
        let src = "for i in range(0,1):\n    x = 1\n  y = 2\n";
        assert!(matches!(lex(src), Err(LangError::Lex { .. })));
    }

    #[test]
    fn rejects_unbalanced_brackets() {
        assert!(lex("x = (1 + 2\n").is_err());
        assert!(lex("x = 1)\n").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(matches!(lex("x = 1 @ 2"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn keywords_recognised() {
        let t = toks("for i in range(0,2): pass_like");
        assert_eq!(t[0], Tok::For);
        assert_eq!(t[2], Tok::In);
        assert_eq!(t[3], Tok::Ident("range".into()));
    }
}
