//! Error types for the user-language front-end.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, checking, or interpreting user programs.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical error (bad character, inconsistent indentation, …).
    Lex {
        /// Source position of the offending character.
        pos: Pos,
        /// Human-readable description.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// Source position where parsing failed.
        pos: Pos,
        /// Human-readable description.
        msg: String,
    },
    /// Static type/shape error.
    Type(String),
    /// Runtime error during interpretation (only possible for programs that
    /// failed to be checked, or for host-environment mismatches).
    Runtime(String),
}

impl LangError {
    pub(crate) fn lex(pos: Pos, msg: impl Into<String>) -> Self {
        LangError::Lex {
            pos,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(pos: Pos, msg: impl Into<String>) -> Self {
        LangError::Parse {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, msg } => write!(f, "lexical error at {pos}: {msg}"),
            LangError::Parse { pos, msg } => write!(f, "syntax error at {pos}: {msg}"),
            LangError::Type(msg) => write!(f, "type error: {msg}"),
            LangError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}
