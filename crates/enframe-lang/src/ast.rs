//! Abstract syntax of the user language (paper Figure 4).

use std::fmt;

/// A parsed user program: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProgram {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lval = expr`
    Assign {
        /// Assignment target (name or indexed name).
        target: Lval,
        /// Right-hand side.
        expr: Expr,
    },
    /// `(a, b, ...) = loadData() | loadParams()` — positional tuple binding
    /// of an external call's results.
    TupleAssign {
        /// Names bound positionally.
        names: Vec<String>,
        /// Which external primitive is called.
        call: ExtCall,
    },
    /// `name = init()` — single binding of an external call.
    ExtAssign {
        /// The bound name.
        name: String,
        /// Which external primitive is called.
        call: ExtCall,
    },
    /// `for var in range(lo, hi): body`
    For {
        /// Loop counter name.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// An assignment target: `M`, `M[i]`, `M[i][l]`, …
#[derive(Debug, Clone, PartialEq)]
pub enum Lval {
    /// A plain variable.
    Name(String),
    /// An indexed location.
    Index(Box<Lval>, Box<Expr>),
}

impl Lval {
    /// The base variable name of the target.
    pub fn base_name(&self) -> &str {
        match self {
            Lval::Name(n) => n,
            Lval::Index(inner, _) => inner.base_name(),
        }
    }

    /// Number of index levels (0 for a plain name).
    pub fn depth(&self) -> usize {
        match self {
            Lval::Name(_) => 0,
            Lval::Index(inner, _) => inner.depth() + 1,
        }
    }

    /// The index expressions from outermost to innermost.
    pub fn indices(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Lval::Index(inner, idx) = cur {
            out.push(idx.as_ref());
            cur = inner;
        }
        out.reverse();
        out
    }
}

/// External data primitives (paper §2: "Input data").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtCall {
    /// `loadData()`
    LoadData,
    /// `loadParams()`
    LoadParams,
    /// `init()`
    Init,
}

impl fmt::Display for ExtCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtCall::LoadData => write!(f, "loadData()"),
            ExtCall::LoadParams => write!(f, "loadParams()"),
            ExtCall::Init => write!(f, "init()"),
        }
    }
}

/// A reduce aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// `reduce_and`
    And,
    /// `reduce_or`
    Or,
    /// `reduce_sum`
    Sum,
    /// `reduce_mult`
    Mult,
    /// `reduce_count`
    Count,
}

impl ReduceKind {
    /// Parses a function name into a reduce kind.
    pub fn from_name(name: &str) -> Option<ReduceKind> {
        Some(match name {
            "reduce_and" => ReduceKind::And,
            "reduce_or" => ReduceKind::Or,
            "reduce_sum" => ReduceKind::Sum,
            "reduce_mult" => ReduceKind::Mult,
            "reduce_count" => ReduceKind::Count,
            _ => return None,
        })
    }
}

/// Tie-breaking helpers (paper §2.2 "Breaking ties").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieKind {
    /// `breakTies(M)` on a 1-D Boolean array: keep the first `True`.
    One,
    /// `breakTies1(M)`: fix the **first** dimension, break ties along the
    /// second (one winner per row).
    Dim1,
    /// `breakTies2(M)`: fix the **second** dimension, break ties along the
    /// first (one winner per column).
    Dim2,
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

/// A list comprehension `[expr for var in range(lo, hi) if cond]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ListCompr {
    /// Element expression.
    pub expr: Box<Expr>,
    /// Comprehension counter.
    pub var: String,
    /// Lower bound (inclusive).
    pub lo: Box<Expr>,
    /// Upper bound (exclusive).
    pub hi: Box<Expr>,
    /// Optional filter.
    pub cond: Option<Box<Expr>>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Name(String),
    /// Indexing `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `[None] * e` array initialisation.
    ArrayInit(Box<Expr>),
    /// Comparison `a θ b`.
    Compare(Cmp, Box<Expr>, Box<Expr>),
    /// Addition `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction `a - b` (sugar used in index arithmetic).
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `reduce_*(list-comprehension)`.
    Reduce(ReduceKind, ListCompr),
    /// `pow(a, r)`.
    Pow(Box<Expr>, Box<Expr>),
    /// `invert(a)`.
    Invert(Box<Expr>),
    /// `dist(a, b)`.
    Dist(Box<Expr>, Box<Expr>),
    /// `scalar_mult(s, v)`.
    ScalarMult(Box<Expr>, Box<Expr>),
    /// `breakTies*(M)`.
    BreakTies(TieKind, Box<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lval_helpers() {
        // M[i][l]
        let lv = Lval::Index(
            Box::new(Lval::Index(
                Box::new(Lval::Name("M".into())),
                Box::new(Expr::Name("i".into())),
            )),
            Box::new(Expr::Name("l".into())),
        );
        assert_eq!(lv.base_name(), "M");
        assert_eq!(lv.depth(), 2);
        let idx = lv.indices();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0], &Expr::Name("i".into()));
        assert_eq!(idx[1], &Expr::Name("l".into()));
    }

    #[test]
    fn reduce_kind_from_name() {
        assert_eq!(ReduceKind::from_name("reduce_and"), Some(ReduceKind::And));
        assert_eq!(
            ReduceKind::from_name("reduce_count"),
            Some(ReduceKind::Count)
        );
        assert_eq!(ReduceKind::from_name("reduce_max"), None);
    }

    #[test]
    fn ext_call_display() {
        assert_eq!(ExtCall::LoadData.to_string(), "loadData()");
        assert_eq!(ExtCall::Init.to_string(), "init()");
    }
}
