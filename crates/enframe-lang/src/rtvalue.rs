//! Runtime values of the user-language interpreter.
//!
//! The interpreter evaluates user programs with the **probabilistic
//! interpretation's** value semantics (paper §3.2): scalars and points are
//! extended with the undefined element `u`, which is the additive identity,
//! absorbs multiplication, and makes comparisons vacuously true. `None` in
//! array initialisers is represented as [`RtValue::Undef`] too — an
//! uninitialised slot reads as undefined, exactly like an event whose guard
//! is false.
//!
//! This choice is what makes "run the user program on one possible world"
//! agree bit-for-bit with "evaluate the translated event program under the
//! corresponding valuation" — the translation-soundness property tested in
//! `tests/translation_equivalence.rs`.

use crate::ast::Cmp;
use crate::error::LangError;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RtValue {
    /// The undefined element `u` (also the value of `None` slots).
    #[default]
    Undef,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// A point in the feature space.
    Point(Vec<f64>),
    /// An array (list) of values.
    Array(Vec<RtValue>),
}

impl RtValue {
    /// Builds a point value.
    pub fn point(coords: &[f64]) -> RtValue {
        RtValue::Point(coords.to_vec())
    }

    /// True iff undefined.
    pub fn is_undef(&self) -> bool {
        matches!(self, RtValue::Undef)
    }

    /// Numeric payload as f64 (Int or Float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            RtValue::Int(i) => Some(*i as f64),
            RtValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            RtValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            RtValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short description of the value's kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            RtValue::Undef => "undefined",
            RtValue::Bool(_) => "bool",
            RtValue::Int(_) => "int",
            RtValue::Float(_) => "float",
            RtValue::Point(_) => "point",
            RtValue::Array(_) => "array",
        }
    }

    fn type_err(op: &str, a: &RtValue, b: &RtValue) -> LangError {
        LangError::Runtime(format!("cannot {op} {} and {}", a.kind(), b.kind()))
    }

    /// Extended addition (`u + x = x`).
    pub fn add(&self, rhs: &RtValue) -> Result<RtValue, LangError> {
        use RtValue::*;
        Ok(match (self, rhs) {
            (Undef, v) | (v, Undef) => v.clone(),
            (Int(a), Int(b)) => Int(a + b),
            (Int(a), Float(b)) => Float(*a as f64 + b),
            (Float(a), Int(b)) => Float(a + *b as f64),
            (Float(a), Float(b)) => Float(a + b),
            (Point(a), Point(b)) => {
                if a.len() != b.len() {
                    return Err(LangError::Runtime(format!(
                        "adding points of dimension {} and {}",
                        a.len(),
                        b.len()
                    )));
                }
                Point(a.iter().zip(b).map(|(x, y)| x + y).collect())
            }
            (a, b) => return Err(Self::type_err("add", a, b)),
        })
    }

    /// Extended subtraction (defined on defined numerics only; used for
    /// index arithmetic and symmetric to `add` otherwise).
    pub fn sub(&self, rhs: &RtValue) -> Result<RtValue, LangError> {
        use RtValue::*;
        Ok(match (self, rhs) {
            (Undef, _) | (_, Undef) => Undef,
            (Int(a), Int(b)) => Int(a - b),
            (Int(a), Float(b)) => Float(*a as f64 - b),
            (Float(a), Int(b)) => Float(a - *b as f64),
            (Float(a), Float(b)) => Float(a - b),
            (Point(a), Point(b)) => {
                if a.len() != b.len() {
                    return Err(LangError::Runtime("point dimension mismatch".into()));
                }
                Point(a.iter().zip(b).map(|(x, y)| x - y).collect())
            }
            (a, b) => return Err(Self::type_err("subtract", a, b)),
        })
    }

    /// Extended multiplication (`u · x = u`); scalar·point scales.
    pub fn mul(&self, rhs: &RtValue) -> Result<RtValue, LangError> {
        use RtValue::*;
        Ok(match (self, rhs) {
            (Undef, _) | (_, Undef) => Undef,
            (Int(a), Int(b)) => Int(a * b),
            (Int(a), Float(b)) => Float(*a as f64 * b),
            (Float(a), Int(b)) => Float(a * *b as f64),
            (Float(a), Float(b)) => Float(a * b),
            (Int(a), Point(p)) | (Point(p), Int(a)) => {
                Point(p.iter().map(|x| x * *a as f64).collect())
            }
            (Float(a), Point(p)) | (Point(p), Float(a)) => Point(p.iter().map(|x| x * a).collect()),
            (a, b) => return Err(Self::type_err("multiply", a, b)),
        })
    }

    /// Extended inverse (`0⁻¹ = u`, `u⁻¹ = u`).
    pub fn invert(&self) -> Result<RtValue, LangError> {
        match self {
            RtValue::Undef => Ok(RtValue::Undef),
            RtValue::Int(0) => Ok(RtValue::Undef),
            RtValue::Int(i) => Ok(RtValue::Float(1.0 / *i as f64)),
            RtValue::Float(f) if *f == 0.0 => Ok(RtValue::Undef),
            RtValue::Float(f) => Ok(RtValue::Float(1.0 / f)),
            other => Err(LangError::Runtime(format!(
                "cannot invert {}",
                other.kind()
            ))),
        }
    }

    /// Extended integer power (`uʳ = u`; `0⁻ʳ = u`).
    pub fn pow(&self, r: i64) -> Result<RtValue, LangError> {
        match self {
            RtValue::Undef => Ok(RtValue::Undef),
            RtValue::Int(i) => {
                if *i == 0 && r < 0 {
                    Ok(RtValue::Undef)
                } else {
                    Ok(RtValue::Float((*i as f64).powi(r as i32)))
                }
            }
            RtValue::Float(f) => {
                if *f == 0.0 && r < 0 {
                    Ok(RtValue::Undef)
                } else {
                    Ok(RtValue::Float(f.powi(r as i32)))
                }
            }
            other => Err(LangError::Runtime(format!(
                "cannot exponentiate {}",
                other.kind()
            ))),
        }
    }

    /// Euclidean distance; undefined if either side is undefined.
    pub fn dist(&self, rhs: &RtValue) -> Result<RtValue, LangError> {
        use RtValue::*;
        Ok(match (self, rhs) {
            (Undef, _) | (_, Undef) => Undef,
            (Point(a), Point(b)) => {
                if a.len() != b.len() {
                    return Err(LangError::Runtime("point dimension mismatch".into()));
                }
                Float(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt(),
                )
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float((x - y).abs()),
                _ => return Err(Self::type_err("take distance between", a, b)),
            },
        })
    }

    /// Undefined-aware comparison: true if either side is undefined (§3.2).
    pub fn compare(&self, op: Cmp, rhs: &RtValue) -> Result<bool, LangError> {
        use RtValue::*;
        match (self, rhs) {
            (Undef, _) | (_, Undef) => Ok(true),
            (Bool(a), Bool(b)) if op == Cmp::Eq => Ok(a == b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(match op {
                    Cmp::Le => x <= y,
                    Cmp::Lt => x < y,
                    Cmp::Ge => x >= y,
                    Cmp::Gt => x > y,
                    Cmp::Eq => x == y,
                }),
                _ => Err(Self::type_err("compare", a, b)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undef_laws() {
        let u = RtValue::Undef;
        let x = RtValue::Float(3.0);
        assert_eq!(u.add(&x).unwrap(), x);
        assert!(u.mul(&x).unwrap().is_undef());
        assert!(u.invert().unwrap().is_undef());
        assert!(u.pow(2).unwrap().is_undef());
        assert!(u.dist(&x).unwrap().is_undef());
        assert!(u.compare(Cmp::Lt, &x).unwrap());
    }

    #[test]
    fn int_float_promotion() {
        assert_eq!(
            RtValue::Int(1).add(&RtValue::Float(0.5)).unwrap(),
            RtValue::Float(1.5)
        );
        assert_eq!(
            RtValue::Int(2).mul(&RtValue::Int(3)).unwrap(),
            RtValue::Int(6)
        );
        assert_eq!(
            RtValue::Int(3).sub(&RtValue::Int(1)).unwrap(),
            RtValue::Int(2)
        );
    }

    #[test]
    fn zero_inverse_undefined() {
        assert!(RtValue::Int(0).invert().unwrap().is_undef());
        assert!(RtValue::Float(0.0).invert().unwrap().is_undef());
        assert_eq!(RtValue::Int(4).invert().unwrap(), RtValue::Float(0.25));
    }

    #[test]
    fn point_operations() {
        let a = RtValue::point(&[0.0, 0.0]);
        let b = RtValue::point(&[3.0, 4.0]);
        assert_eq!(a.dist(&b).unwrap(), RtValue::Float(5.0));
        assert_eq!(a.add(&b).unwrap(), RtValue::point(&[3.0, 4.0]));
        assert_eq!(
            RtValue::Float(2.0).mul(&b).unwrap(),
            RtValue::point(&[6.0, 8.0])
        );
    }

    #[test]
    fn comparisons() {
        assert!(RtValue::Int(1)
            .compare(Cmp::Le, &RtValue::Float(1.0))
            .unwrap());
        assert!(!RtValue::Int(2).compare(Cmp::Lt, &RtValue::Int(2)).unwrap());
        assert!(RtValue::Bool(true)
            .compare(Cmp::Eq, &RtValue::Bool(true))
            .unwrap());
        assert!(RtValue::Bool(true)
            .compare(Cmp::Le, &RtValue::Int(1))
            .is_err());
    }

    #[test]
    fn type_errors() {
        let arr = RtValue::Array(vec![]);
        assert!(arr.add(&RtValue::Int(1)).is_err());
        assert!(arr.invert().is_err());
        assert!(arr.pow(2).is_err());
        assert!(RtValue::Bool(true).dist(&RtValue::Int(1)).is_err());
    }

    #[test]
    fn pow_zero_negative() {
        assert!(RtValue::Float(0.0).pow(-1).unwrap().is_undef());
        assert_eq!(RtValue::Float(2.0).pow(3).unwrap(), RtValue::Float(8.0));
    }
}
