//! Deterministic interpreter for user programs.
//!
//! The interpreter executes a user program against an [`ExternalEnv`] that
//! supplies `loadData()`, `loadParams()`, and `init()`. Its value semantics
//! are the *probabilistic interpretation's* semantics (see [`crate::rtvalue`]):
//! undefined values propagate exactly like the event language's `u`, so
//! interpreting a program on one possible world coincides with evaluating
//! the translated event program under the corresponding valuation.
//!
//! The naïve baseline of the paper's §5 ("clustering in each possible
//! world") is this interpreter run once per world by `enframe-worlds`.

use crate::ast::*;
use crate::error::LangError;
use crate::rtvalue::RtValue;
use std::collections::HashMap;

/// Host environment supplying the external data primitives.
pub trait ExternalEnv {
    /// Values bound by `(a, b, ...) = loadData()`, positionally.
    fn load_data(&self) -> Vec<RtValue>;
    /// Values bound by `(a, b, ...) = loadParams()`, positionally.
    fn load_params(&self) -> Vec<RtValue>;
    /// The value bound by `M = init()`.
    fn init(&self) -> RtValue;
}

/// A straightforward [`ExternalEnv`] backed by owned values.
#[derive(Debug, Clone, Default)]
pub struct SimpleEnv {
    /// `loadData()` results.
    pub data: Vec<RtValue>,
    /// `loadParams()` results.
    pub params: Vec<RtValue>,
    /// `init()` result.
    pub init_value: RtValue,
}

impl ExternalEnv for SimpleEnv {
    fn load_data(&self) -> Vec<RtValue> {
        self.data.clone()
    }

    fn load_params(&self) -> Vec<RtValue> {
        self.params.clone()
    }

    fn init(&self) -> RtValue {
        self.init_value.clone()
    }
}

/// The interpreter. Create one per run; [`Interp::run`] consumes the
/// program statements and leaves the final variable bindings readable.
pub struct Interp<'e> {
    ext: &'e dyn ExternalEnv,
    env: HashMap<String, RtValue>,
}

impl<'e> Interp<'e> {
    /// Creates an interpreter over the given external environment.
    pub fn new(ext: &'e dyn ExternalEnv) -> Self {
        Interp {
            ext,
            env: HashMap::new(),
        }
    }

    /// Runs a program to completion.
    pub fn run(&mut self, program: &UserProgram) -> Result<(), LangError> {
        for stmt in &program.stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    /// Reads a variable from the final environment.
    pub fn get(&self, name: &str) -> Option<&RtValue> {
        self.env.get(name)
    }

    /// The final environment.
    pub fn env(&self) -> &HashMap<String, RtValue> {
        &self.env
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::TupleAssign { names, call } => {
                let values = match call {
                    ExtCall::LoadData => self.ext.load_data(),
                    ExtCall::LoadParams => self.ext.load_params(),
                    ExtCall::Init => vec![self.ext.init()],
                };
                if values.len() != names.len() {
                    return Err(LangError::Runtime(format!(
                        "{call} returned {} values but {} names are bound",
                        values.len(),
                        names.len()
                    )));
                }
                for (name, value) in names.iter().zip(values) {
                    self.env.insert(name.clone(), value);
                }
                Ok(())
            }
            Stmt::ExtAssign { name, call } => {
                let value = match call {
                    ExtCall::Init => self.ext.init(),
                    ExtCall::LoadData => {
                        let mut v = self.ext.load_data();
                        if v.len() != 1 {
                            return Err(LangError::Runtime(
                                "loadData() bound to a single name must return one value".into(),
                            ));
                        }
                        v.pop().unwrap()
                    }
                    ExtCall::LoadParams => {
                        let mut v = self.ext.load_params();
                        if v.len() != 1 {
                            return Err(LangError::Runtime(
                                "loadParams() bound to a single name must return one value".into(),
                            ));
                        }
                        v.pop().unwrap()
                    }
                };
                self.env.insert(name.clone(), value);
                Ok(())
            }
            Stmt::Assign { target, expr } => {
                let value = self.expr(expr)?;
                self.assign(target, value)
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.int_expr(lo)?;
                let hi = self.int_expr(hi)?;
                let saved = self.env.get(var).cloned();
                for i in lo..hi {
                    self.env.insert(var.clone(), RtValue::Int(i));
                    for s in body {
                        self.stmt(s)?;
                    }
                }
                match saved {
                    Some(v) => {
                        self.env.insert(var.clone(), v);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &Lval, value: RtValue) -> Result<(), LangError> {
        match target {
            Lval::Name(name) => {
                self.env.insert(name.clone(), value);
                Ok(())
            }
            Lval::Index(..) => {
                // Evaluate index expressions first (immutable), then walk
                // the array mutably.
                let mut idx_values = Vec::new();
                for e in target.indices() {
                    idx_values.push(self.int_expr(e)?);
                }
                let base = target.base_name().to_owned();
                let slot = self.env.get_mut(&base).ok_or_else(|| {
                    LangError::Runtime(format!("assignment to undefined variable `{base}`"))
                })?;
                let mut cur = slot;
                for (level, &ix) in idx_values.iter().enumerate() {
                    match cur {
                        RtValue::Array(items) => {
                            let len = items.len();
                            if ix < 0 || ix as usize >= len {
                                return Err(LangError::Runtime(format!(
                                    "index {ix} out of range 0..{len} on `{base}` (level {level})"
                                )));
                            }
                            cur = &mut items[ix as usize];
                        }
                        other => {
                            return Err(LangError::Runtime(format!(
                                "cannot index {} value `{base}` at level {level}",
                                other.kind()
                            )))
                        }
                    }
                }
                *cur = value;
                Ok(())
            }
        }
    }

    fn int_expr(&mut self, e: &Expr) -> Result<i64, LangError> {
        match self.expr(e)? {
            RtValue::Int(i) => Ok(i),
            other => Err(LangError::Runtime(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    fn bool_expr(&mut self, e: &Expr) -> Result<bool, LangError> {
        match self.expr(e)? {
            RtValue::Bool(b) => Ok(b),
            other => Err(LangError::Runtime(format!(
                "expected Boolean, found {}",
                other.kind()
            ))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<RtValue, LangError> {
        match e {
            Expr::Int(i) => Ok(RtValue::Int(*i)),
            Expr::Float(f) => Ok(RtValue::Float(*f)),
            Expr::Bool(b) => Ok(RtValue::Bool(*b)),
            Expr::Name(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| LangError::Runtime(format!("use of undefined variable `{n}`"))),
            Expr::Index(base, idx) => {
                let ix = self.int_expr(idx)?;
                match self.expr(base)? {
                    RtValue::Array(items) => {
                        if ix < 0 || ix as usize >= items.len() {
                            return Err(LangError::Runtime(format!(
                                "index {ix} out of range 0..{}",
                                items.len()
                            )));
                        }
                        Ok(items[ix as usize].clone())
                    }
                    other => Err(LangError::Runtime(format!(
                        "cannot index {} value",
                        other.kind()
                    ))),
                }
            }
            Expr::ArrayInit(len) => {
                let n = self.int_expr(len)?;
                if n < 0 {
                    return Err(LangError::Runtime(format!("negative array size {n}")));
                }
                Ok(RtValue::Array(vec![RtValue::Undef; n as usize]))
            }
            Expr::Compare(op, a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                Ok(RtValue::Bool(va.compare(*op, &vb)?))
            }
            Expr::Add(a, b) => self.expr(a)?.add(&self.expr(b)?),
            Expr::Sub(a, b) => self.expr(a)?.sub(&self.expr(b)?),
            Expr::Mul(a, b) => self.expr(a)?.mul(&self.expr(b)?),
            Expr::Neg(a) => RtValue::Int(0).sub(&self.expr(a)?).map(|v| match v {
                RtValue::Undef => RtValue::Undef,
                other => other,
            }),
            Expr::Reduce(kind, compr) => self.reduce(*kind, compr),
            Expr::Pow(a, r) => {
                let base = self.expr(a)?;
                let r = self.int_expr(r)?;
                base.pow(r)
            }
            Expr::Invert(a) => self.expr(a)?.invert(),
            Expr::Dist(a, b) => self.expr(a)?.dist(&self.expr(b)?),
            Expr::ScalarMult(s, v) => self.expr(s)?.mul(&self.expr(v)?),
            Expr::BreakTies(kind, m) => {
                let arr = self.expr(m)?;
                break_ties(*kind, arr)
            }
        }
    }

    fn reduce(&mut self, kind: ReduceKind, compr: &ListCompr) -> Result<RtValue, LangError> {
        let lo = self.int_expr(&compr.lo)?;
        let hi = self.int_expr(&compr.hi)?;
        let saved = self.env.get(&compr.var).cloned();

        let mut acc = match kind {
            ReduceKind::And => RtValue::Bool(true),
            ReduceKind::Or => RtValue::Bool(false),
            ReduceKind::Sum => RtValue::Undef,
            ReduceKind::Mult => RtValue::Int(1),
            ReduceKind::Count => RtValue::Undef,
        };
        let mut count: i64 = 0;
        for i in lo..hi {
            self.env.insert(compr.var.clone(), RtValue::Int(i));
            if let Some(cond) = &compr.cond {
                if !self.bool_expr(cond)? {
                    continue;
                }
            }
            match kind {
                ReduceKind::Count => {
                    // Element expression is evaluated for effects-free
                    // validation but its value is irrelevant (it is `1` in
                    // practice).
                    let _ = self.expr(&compr.expr)?;
                    count += 1;
                }
                ReduceKind::And => {
                    let b = self.bool_expr(&compr.expr)?;
                    if !b {
                        acc = RtValue::Bool(false);
                    }
                }
                ReduceKind::Or => {
                    let b = self.bool_expr(&compr.expr)?;
                    if b {
                        acc = RtValue::Bool(true);
                    }
                }
                ReduceKind::Sum => {
                    let v = self.expr(&compr.expr)?;
                    acc = acc.add(&v)?;
                }
                ReduceKind::Mult => {
                    let v = self.expr(&compr.expr)?;
                    acc = acc.mul(&v)?;
                }
            }
        }
        match saved {
            Some(v) => {
                self.env.insert(compr.var.clone(), v);
            }
            None => {
                self.env.remove(&compr.var);
            }
        }
        if kind == ReduceKind::Count {
            // Σ COND ⊗ 1 semantics: undefined when no element qualifies.
            return Ok(if count == 0 {
                RtValue::Undef
            } else {
                RtValue::Int(count)
            });
        }
        Ok(acc)
    }
}

/// Implements `breakTies`/`breakTies1`/`breakTies2` (paper §2.2).
fn break_ties(kind: TieKind, arr: RtValue) -> Result<RtValue, LangError> {
    fn keep_first(mut row: Vec<RtValue>) -> Result<Vec<RtValue>, LangError> {
        let mut seen = false;
        for v in row.iter_mut() {
            match v {
                RtValue::Bool(b) => {
                    if *b {
                        if seen {
                            *b = false;
                        }
                        seen = true;
                    }
                }
                other => {
                    return Err(LangError::Runtime(format!(
                        "breakTies expects Boolean entries, found {}",
                        other.kind()
                    )))
                }
            }
        }
        Ok(row)
    }

    match (kind, arr) {
        (TieKind::One, RtValue::Array(items)) => Ok(RtValue::Array(keep_first(items)?)),
        (TieKind::Dim1, RtValue::Array(rows)) => {
            // Fix the first dimension: break ties along each row.
            let rows = rows
                .into_iter()
                .map(|row| match row {
                    RtValue::Array(items) => keep_first(items).map(RtValue::Array),
                    other => Err(LangError::Runtime(format!(
                        "breakTies1 expects a 2-D array, found row of {}",
                        other.kind()
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RtValue::Array(rows))
        }
        (TieKind::Dim2, RtValue::Array(rows)) => {
            // Fix the second dimension: break ties along each column.
            let mut matrix: Vec<Vec<RtValue>> = rows
                .into_iter()
                .map(|row| match row {
                    RtValue::Array(items) => Ok(items),
                    other => Err(LangError::Runtime(format!(
                        "breakTies2 expects a 2-D array, found row of {}",
                        other.kind()
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let n_cols = matrix.first().map_or(0, Vec::len);
            for col in 0..n_cols {
                let mut seen = false;
                for row in matrix.iter_mut() {
                    match row.get_mut(col) {
                        Some(RtValue::Bool(b)) => {
                            if *b {
                                if seen {
                                    *b = false;
                                }
                                seen = true;
                            }
                        }
                        Some(other) => {
                            return Err(LangError::Runtime(format!(
                                "breakTies2 expects Boolean entries, found {}",
                                other.kind()
                            )))
                        }
                        None => {
                            return Err(LangError::Runtime(
                                "breakTies2 expects a rectangular array".into(),
                            ))
                        }
                    }
                }
            }
            Ok(RtValue::Array(
                matrix.into_iter().map(RtValue::Array).collect(),
            ))
        }
        (_, other) => Err(LangError::Runtime(format!(
            "breakTies expects an array, found {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::programs;

    fn run_with<'e>(src: &str, env: &'e SimpleEnv) -> Interp<'e> {
        let prog = parse(src).expect("parse");
        let mut interp = Interp::new(env);
        interp.run(&prog).expect("run");
        interp
    }

    fn run(src: &str) -> HashMap<String, RtValue> {
        let env = SimpleEnv::default();
        let prog = parse(src).expect("parse");
        let mut interp = Interp::new(&env);
        interp.run(&prog).expect("run");
        interp.env().clone()
    }

    #[test]
    fn scalar_assignments() {
        let env = run("V = 2\nW = V\nX = W + 3\n");
        assert_eq!(env["X"], RtValue::Int(5));
    }

    #[test]
    fn array_init_and_index_assignment() {
        let env = run("M = [None] * 3\nM[1] = True\n");
        assert_eq!(
            env["M"],
            RtValue::Array(vec![RtValue::Undef, RtValue::Bool(true), RtValue::Undef])
        );
    }

    #[test]
    fn nested_loops_fill_matrix() {
        let src = "\
M = [None] * 2
for i in range(0,2):
    M[i] = [None] * 3
    for j in range(0,3):
        M[i][j] = i * 3 + j
";
        let env = run(src);
        match &env["M"] {
            RtValue::Array(rows) => {
                assert_eq!(rows.len(), 2);
                match &rows[1] {
                    RtValue::Array(r) => assert_eq!(r[2], RtValue::Int(5)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_example3_counter_program() {
        // The loop/assignment pattern from Example 3: M accumulates.
        let src = "\
M = 7
M = M + 2
for i in range(0,2):
    M = M + i
    for j in range(0,3):
        M = M + 1
M = M + 1
";
        let env = run(src);
        // 7+2 = 9; i=0: +0 +3 = 12; i=1: +1 +3 = 16; +1 = 17.
        assert_eq!(env["M"], RtValue::Int(17));
    }

    #[test]
    fn reduce_sum_with_filter_skips() {
        let src = "\
B = [None] * 4
for i in range(0,4):
    B[i] = i > 1
S = reduce_sum([10 for i in range(0,4) if B[i]])
C = reduce_count([1 for i in range(0,4) if B[i]])
";
        let env = run(src);
        assert_eq!(env["S"], RtValue::Int(20));
        assert_eq!(env["C"], RtValue::Int(2));
    }

    #[test]
    fn empty_reduce_semantics() {
        let src = "\
S = reduce_sum([1 for i in range(0,0)])
C = reduce_count([1 for i in range(0,0)])
A = reduce_and([1 > 2 for i in range(0,0)])
O = reduce_or([1 > 2 for i in range(0,0)])
P = reduce_mult([2 for i in range(0,0)])
";
        let env = run(src);
        assert!(
            env["S"].is_undef(),
            "empty sum is undefined (Σ of no c-values)"
        );
        assert!(env["C"].is_undef(), "empty count is undefined (Σ COND⊗1)");
        assert_eq!(env["A"], RtValue::Bool(true));
        assert_eq!(env["O"], RtValue::Bool(false));
        assert_eq!(env["P"], RtValue::Int(1));
    }

    #[test]
    fn invert_zero_count_gives_undefined_centroid() {
        // k-means' empty-cluster behaviour.
        let src = "C = reduce_count([1 for i in range(0,3) if 1 > 2])\nI = invert(C)\n";
        let env = run(src);
        assert!(env["C"].is_undef());
        assert!(env["I"].is_undef());
    }

    #[test]
    fn break_ties_variants() {
        let src = "\
B = [None] * 3
B[0] = True
B[1] = True
B[2] = False
B = breakTies(B)
M = [None] * 2
for i in range(0,2):
    M[i] = [None] * 2
    for j in range(0,2):
        M[i][j] = True
M1 = breakTies1(M)
M2 = breakTies2(M)
";
        let env = run(src);
        assert_eq!(
            env["B"],
            RtValue::Array(vec![
                RtValue::Bool(true),
                RtValue::Bool(false),
                RtValue::Bool(false)
            ])
        );
        // breakTies1: first True per row survives.
        assert_eq!(
            env["M1"],
            RtValue::Array(vec![
                RtValue::Array(vec![RtValue::Bool(true), RtValue::Bool(false)]),
                RtValue::Array(vec![RtValue::Bool(true), RtValue::Bool(false)]),
            ])
        );
        // breakTies2: first True per column survives.
        assert_eq!(
            env["M2"],
            RtValue::Array(vec![
                RtValue::Array(vec![RtValue::Bool(true), RtValue::Bool(true)]),
                RtValue::Array(vec![RtValue::Bool(false), RtValue::Bool(false)]),
            ])
        );
    }

    /// Environment for k-medoids over four 1-D points (paper Example 1
    /// geometry), all certainly present.
    fn kmedoids_env() -> SimpleEnv {
        let objects = RtValue::Array(vec![
            RtValue::point(&[0.0]),
            RtValue::point(&[1.0]),
            RtValue::point(&[5.0]),
            RtValue::point(&[6.0]),
        ]);
        SimpleEnv {
            data: vec![objects, RtValue::Int(4)],
            params: vec![RtValue::Int(2), RtValue::Int(3)],
            init_value: RtValue::Array(vec![RtValue::point(&[1.0]), RtValue::point(&[6.0])]),
        }
    }

    #[test]
    fn kmedoids_clusters_example1() {
        let env = kmedoids_env();
        let interp = run_with(programs::K_MEDOIDS, &env);
        // Final medoids: cluster {o0,o1} elects o0 (ties to lower index);
        // cluster {o2,o3} elects o2.
        match interp.get("M").unwrap() {
            RtValue::Array(ms) => {
                assert_eq!(ms[0], RtValue::point(&[0.0]));
                assert_eq!(ms[1], RtValue::point(&[5.0]));
            }
            other => panic!("unexpected {other:?}"),
        }
        // InCl: objects 0,1 in cluster 0; 2,3 in cluster 1.
        match interp.get("InCl").unwrap() {
            RtValue::Array(rows) => {
                assert_eq!(
                    rows[0],
                    RtValue::Array(vec![
                        RtValue::Bool(true),
                        RtValue::Bool(true),
                        RtValue::Bool(false),
                        RtValue::Bool(false)
                    ])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kmedoids_with_absent_object() {
        // Object o3 absent (Undef). Its distances are undefined; it must
        // not disturb the clustering of o0..o2, and M[1] = o2.
        let mut env = kmedoids_env();
        env.data[0] = RtValue::Array(vec![
            RtValue::point(&[0.0]),
            RtValue::point(&[1.0]),
            RtValue::point(&[5.0]),
            RtValue::Undef,
        ]);
        let interp = run_with(programs::K_MEDOIDS, &env);
        match interp.get("M").unwrap() {
            RtValue::Array(ms) => {
                assert_eq!(ms[0], RtValue::point(&[0.0]));
                assert_eq!(ms[1], RtValue::point(&[5.0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kmeans_runs_and_computes_centroids() {
        let env = kmedoids_env();
        let interp = run_with(programs::K_MEANS, &env);
        match interp.get("M").unwrap() {
            RtValue::Array(ms) => {
                assert_eq!(ms[0], RtValue::point(&[0.5]));
                assert_eq!(ms[1], RtValue::point(&[5.5]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mcl_runs_on_stochastic_matrix() {
        // Two disconnected pairs: MCL keeps flow within pairs.
        let n = 4;
        let mut rows = Vec::new();
        let weights = [
            [0.5, 0.5, 0.0, 0.0],
            [0.5, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.5, 0.5],
            [0.0, 0.0, 0.5, 0.5],
        ];
        for r in &weights {
            rows.push(RtValue::Array(
                r.iter().map(|&w| RtValue::Float(w)).collect(),
            ));
        }
        let env = SimpleEnv {
            data: vec![
                RtValue::Array((0..n).map(|i| RtValue::point(&[i as f64])).collect()),
                RtValue::Int(n as i64),
                RtValue::Array(rows),
            ],
            params: vec![RtValue::Int(2), RtValue::Int(4)],
            init_value: RtValue::Undef,
        };
        let interp = run_with(programs::MCL, &env);
        match interp.get("M").unwrap() {
            RtValue::Array(rows) => {
                let row0 = match &rows[0] {
                    RtValue::Array(r) => r,
                    other => panic!("unexpected {other:?}"),
                };
                // Mass stays within the first block.
                let in_block: f64 = row0[0].as_f64().unwrap() + row0[1].as_f64().unwrap();
                let out_block: f64 = row0[2].as_f64().unwrap() + row0[3].as_f64().unwrap();
                assert!((in_block - 1.0).abs() < 1e-9);
                assert!(out_block.abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn runtime_errors_are_reported() {
        assert!(matches!(
            parse("x = y\n").map(|p| Interp::new(&SimpleEnv::default()).run(&p)),
            Ok(Err(LangError::Runtime(_)))
        ));
        // Index out of range.
        let p = parse("M = [None] * 2\nM[5] = 1\n").unwrap();
        assert!(Interp::new(&SimpleEnv::default()).run(&p).is_err());
        // Negative array size.
        let p = parse("M = [None] * (0 - 1)\n").unwrap();
        assert!(Interp::new(&SimpleEnv::default()).run(&p).is_err());
        // Arity mismatch.
        let p = parse("(a, b, c) = loadParams()\n").unwrap();
        let env = SimpleEnv {
            params: vec![RtValue::Int(1)],
            ..SimpleEnv::default()
        };
        assert!(Interp::new(&env).run(&p).is_err());
    }

    #[test]
    fn loop_variable_scoping_restored() {
        let src = "\
i = 99
for i in range(0,3):
    x = i
y = i
";
        let env = run(src);
        assert_eq!(env["y"], RtValue::Int(99));
        assert_eq!(env["x"], RtValue::Int(2));
    }
}
