//! Static type-and-shape checking of user programs.
//!
//! The user language is designed so that "the size of each constructed
//! array is known at compile time" (§2.2). The checker validates a parsed
//! program against the *types* of the values an [`ExternalEnv`] will
//! supply: variable uses are defined before use, loop bounds are integers,
//! reduce aggregates are applied to elements of the right type, tie
//! breaking is applied to Boolean arrays of the right rank, and variable
//! types are stable across loop iterations (checked by running the body
//! analysis to a fixpoint and rejecting programs whose types keep
//! changing).

use crate::ast::*;
use crate::error::LangError;
use crate::interp::ExternalEnv;
use crate::rtvalue::RtValue;
use std::collections::HashMap;

/// The checker's type lattice.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// Not yet known (e.g. a fresh `[None] * n` slot).
    Unknown,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float (integers widen to floats on demand).
    Float,
    /// Feature vector.
    Point,
    /// Array with element type.
    Array(Box<Ty>),
}

impl Ty {
    /// Derives a type from a runtime value (for external bindings).
    pub fn of_value(v: &RtValue) -> Ty {
        match v {
            RtValue::Undef => Ty::Unknown,
            RtValue::Bool(_) => Ty::Bool,
            RtValue::Int(_) => Ty::Int,
            RtValue::Float(_) => Ty::Float,
            RtValue::Point(_) => Ty::Point,
            RtValue::Array(items) => {
                let elem = items
                    .iter()
                    .map(Ty::of_value)
                    .reduce(|a, b| a.join(&b).unwrap_or(Ty::Unknown))
                    .unwrap_or(Ty::Unknown);
                Ty::Array(Box::new(elem))
            }
        }
    }

    /// Whether this type is numeric (or could still become numeric).
    fn is_numericish(&self) -> bool {
        matches!(self, Ty::Int | Ty::Float | Ty::Unknown)
    }

    /// Least upper bound; `Unknown` is bottom, `Int ⊔ Float = Float`.
    pub fn join(&self, other: &Ty) -> Result<Ty, LangError> {
        use Ty::*;
        Ok(match (self, other) {
            (Unknown, t) | (t, Unknown) => t.clone(),
            (Int, Float) | (Float, Int) => Float,
            (Array(a), Array(b)) => Array(Box::new(a.join(b)?)),
            (a, b) if a == b => a.clone(),
            (a, b) => {
                return Err(LangError::Type(format!(
                    "incompatible types {a:?} and {b:?}"
                )))
            }
        })
    }
}

/// Checks `program` against the value shapes supplied by `ext`.
pub fn check_program(program: &UserProgram, ext: &dyn ExternalEnv) -> Result<(), LangError> {
    let mut c = Checker {
        env: HashMap::new(),
        ext,
    };
    c.stmts(&program.stmts)
}

struct Checker<'e> {
    env: HashMap<String, Ty>,
    ext: &'e dyn ExternalEnv,
}

impl<'e> Checker<'e> {
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::TupleAssign { names, call } => {
                let values = match call {
                    ExtCall::LoadData => self.ext.load_data(),
                    ExtCall::LoadParams => self.ext.load_params(),
                    ExtCall::Init => vec![self.ext.init()],
                };
                if values.len() != names.len() {
                    return Err(LangError::Type(format!(
                        "{call} supplies {} values but {} names are bound",
                        values.len(),
                        names.len()
                    )));
                }
                for (n, v) in names.iter().zip(&values) {
                    self.env.insert(n.clone(), Ty::of_value(v));
                }
                Ok(())
            }
            Stmt::ExtAssign { name, call } => {
                let ty = match call {
                    ExtCall::Init => Ty::of_value(&self.ext.init()),
                    ExtCall::LoadData => {
                        let v = self.ext.load_data();
                        if v.len() != 1 {
                            return Err(LangError::Type(
                                "loadData() bound to one name must supply one value".into(),
                            ));
                        }
                        Ty::of_value(&v[0])
                    }
                    ExtCall::LoadParams => {
                        let v = self.ext.load_params();
                        if v.len() != 1 {
                            return Err(LangError::Type(
                                "loadParams() bound to one name must supply one value".into(),
                            ));
                        }
                        Ty::of_value(&v[0])
                    }
                };
                self.env.insert(name.clone(), ty);
                Ok(())
            }
            Stmt::Assign { target, expr } => {
                let ty = self.expr(expr)?;
                self.assign(target, ty)
            }
            Stmt::For { var, lo, hi, body } => {
                self.expect_int(lo, "loop lower bound")?;
                self.expect_int(hi, "loop upper bound")?;
                let saved = self.env.get(var).cloned();
                self.env.insert(var.clone(), Ty::Int);
                // First pass establishes types, second pass must be stable.
                self.stmts(body)?;
                let snapshot = self.env.clone();
                self.env.insert(var.clone(), Ty::Int);
                self.stmts(body)?;
                for (name, ty) in &snapshot {
                    if let Some(after) = self.env.get(name) {
                        if after.join(ty).is_err() {
                            return Err(LangError::Type(format!(
                                "type of `{name}` changes across loop iterations: \
                                 {ty:?} vs {after:?}"
                            )));
                        }
                    }
                }
                match saved {
                    Some(t) => {
                        self.env.insert(var.clone(), t);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &Lval, ty: Ty) -> Result<(), LangError> {
        match target {
            Lval::Name(name) => {
                self.env.insert(name.clone(), ty);
                Ok(())
            }
            Lval::Index(..) => {
                for idx in target.indices() {
                    self.expect_int(idx, "array index")?;
                }
                let base = target.base_name().to_owned();
                let depth = target.depth();
                let cur = self.env.get(&base).cloned().ok_or_else(|| {
                    LangError::Type(format!("assignment to undefined variable `{base}`"))
                })?;
                let updated = refine_at_depth(&cur, depth, &ty, &base)?;
                self.env.insert(base, updated);
                Ok(())
            }
        }
    }

    fn expect_int(&mut self, e: &Expr, what: &str) -> Result<(), LangError> {
        let ty = self.expr(e)?;
        match ty {
            Ty::Int | Ty::Unknown => Ok(()),
            other => Err(LangError::Type(format!(
                "{what} must be an integer, found {other:?}"
            ))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty, LangError> {
        match e {
            Expr::Int(_) => Ok(Ty::Int),
            Expr::Float(_) => Ok(Ty::Float),
            Expr::Bool(_) => Ok(Ty::Bool),
            Expr::Name(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| LangError::Type(format!("use of undefined variable `{n}`"))),
            Expr::Index(base, idx) => {
                self.expect_int(idx, "array index")?;
                match self.expr(base)? {
                    Ty::Array(elem) => Ok(*elem),
                    Ty::Unknown => Ok(Ty::Unknown),
                    other => Err(LangError::Type(format!(
                        "cannot index a value of type {other:?}"
                    ))),
                }
            }
            Expr::ArrayInit(n) => {
                self.expect_int(n, "array size")?;
                Ok(Ty::Array(Box::new(Ty::Unknown)))
            }
            Expr::Compare(_, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                if (ta.is_numericish() && tb.is_numericish()) || (ta == Ty::Bool && tb == Ty::Bool)
                {
                    Ok(Ty::Bool)
                } else {
                    Err(LangError::Type(format!(
                        "cannot compare {ta:?} with {tb:?}"
                    )))
                }
            }
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                match (&ta, &tb) {
                    (Ty::Point, Ty::Point) => Ok(Ty::Point),
                    _ if ta.is_numericish() && tb.is_numericish() => ta.join(&tb),
                    _ => Err(LangError::Type(format!("cannot add {ta:?} and {tb:?}"))),
                }
            }
            Expr::Mul(a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                match (&ta, &tb) {
                    (Ty::Point, t) | (t, Ty::Point) if t.is_numericish() => Ok(Ty::Point),
                    _ if ta.is_numericish() && tb.is_numericish() => ta.join(&tb),
                    _ => Err(LangError::Type(format!(
                        "cannot multiply {ta:?} and {tb:?}"
                    ))),
                }
            }
            Expr::Neg(a) => {
                let ta = self.expr(a)?;
                if ta.is_numericish() {
                    Ok(ta)
                } else {
                    Err(LangError::Type(format!("cannot negate {ta:?}")))
                }
            }
            Expr::Reduce(kind, compr) => self.reduce(*kind, compr),
            Expr::Pow(a, r) => {
                let ta = self.expr(a)?;
                self.expect_int(r, "exponent")?;
                if ta.is_numericish() {
                    Ok(Ty::Float)
                } else {
                    Err(LangError::Type(format!("cannot exponentiate {ta:?}")))
                }
            }
            Expr::Invert(a) => {
                let ta = self.expr(a)?;
                if ta.is_numericish() {
                    Ok(Ty::Float)
                } else {
                    Err(LangError::Type(format!("cannot invert {ta:?}")))
                }
            }
            Expr::Dist(a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                let ok = matches!(
                    (&ta, &tb),
                    (Ty::Point, Ty::Point)
                        | (Ty::Point, Ty::Unknown)
                        | (Ty::Unknown, Ty::Point)
                        | (Ty::Unknown, Ty::Unknown)
                ) || (ta.is_numericish() && tb.is_numericish());
                if ok {
                    Ok(Ty::Float)
                } else {
                    Err(LangError::Type(format!(
                        "dist expects two points or two scalars, found {ta:?}, {tb:?}"
                    )))
                }
            }
            Expr::ScalarMult(s, v) => {
                let ts = self.expr(s)?;
                let tv = self.expr(v)?;
                if ts.is_numericish() && matches!(tv, Ty::Point | Ty::Unknown) {
                    Ok(Ty::Point)
                } else {
                    Err(LangError::Type(format!(
                        "scalar_mult expects (scalar, point), found ({ts:?}, {tv:?})"
                    )))
                }
            }
            Expr::BreakTies(kind, m) => {
                let tm = self.expr(m)?;
                let want_depth = match kind {
                    TieKind::One => 1,
                    TieKind::Dim1 | TieKind::Dim2 => 2,
                };
                let mut cur = tm.clone();
                for _ in 0..want_depth {
                    cur = match cur {
                        Ty::Array(e) => *e,
                        Ty::Unknown => Ty::Unknown,
                        other => {
                            return Err(LangError::Type(format!(
                                "breakTies expects a rank-{want_depth} Boolean array, \
                                 found {tm:?} ({other:?} at inner level)"
                            )))
                        }
                    };
                }
                match cur {
                    Ty::Bool | Ty::Unknown => Ok(tm),
                    other => Err(LangError::Type(format!(
                        "breakTies expects Boolean entries, found {other:?}"
                    ))),
                }
            }
        }
    }

    fn reduce(&mut self, kind: ReduceKind, compr: &ListCompr) -> Result<Ty, LangError> {
        self.expect_int(&compr.lo, "comprehension lower bound")?;
        self.expect_int(&compr.hi, "comprehension upper bound")?;
        let saved = self.env.get(&compr.var).cloned();
        self.env.insert(compr.var.clone(), Ty::Int);
        if let Some(cond) = &compr.cond {
            let tc = self.expr(cond)?;
            if !matches!(tc, Ty::Bool | Ty::Unknown) {
                return Err(LangError::Type(format!(
                    "comprehension filter must be Boolean, found {tc:?}"
                )));
            }
        }
        let telem = self.expr(&compr.expr)?;
        match saved {
            Some(t) => {
                self.env.insert(compr.var.clone(), t);
            }
            None => {
                self.env.remove(&compr.var);
            }
        }
        match kind {
            ReduceKind::And | ReduceKind::Or => match telem {
                Ty::Bool | Ty::Unknown => Ok(Ty::Bool),
                other => Err(LangError::Type(format!(
                    "reduce_and/or expects Boolean elements, found {other:?}"
                ))),
            },
            ReduceKind::Sum => match telem {
                Ty::Int | Ty::Float | Ty::Point | Ty::Unknown => Ok(telem),
                other => Err(LangError::Type(format!(
                    "reduce_sum expects numeric or point elements, found {other:?}"
                ))),
            },
            ReduceKind::Mult => {
                if telem.is_numericish() {
                    Ok(telem)
                } else {
                    Err(LangError::Type(format!(
                        "reduce_mult expects numeric elements, found {telem:?}"
                    )))
                }
            }
            ReduceKind::Count => Ok(Ty::Int),
        }
    }
}

/// Refines an array type by writing `ty` at index depth `depth`.
fn refine_at_depth(cur: &Ty, depth: usize, ty: &Ty, base: &str) -> Result<Ty, LangError> {
    if depth == 0 {
        return cur.join(ty);
    }
    match cur {
        Ty::Array(elem) => {
            let refined = refine_at_depth(elem, depth - 1, ty, base)?;
            Ok(Ty::Array(Box::new(refined)))
        }
        Ty::Unknown => {
            let refined = refine_at_depth(&Ty::Unknown, depth - 1, ty, base)?;
            Ok(Ty::Array(Box::new(refined)))
        }
        other => Err(LangError::Type(format!(
            "`{base}` indexed too deeply: {other:?} is not an array"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::SimpleEnv;
    use crate::parser::parse;
    use crate::programs;

    fn kmedoids_env() -> SimpleEnv {
        SimpleEnv {
            data: vec![
                RtValue::Array(vec![
                    RtValue::point(&[0.0]),
                    RtValue::point(&[1.0]),
                    RtValue::point(&[5.0]),
                    RtValue::point(&[6.0]),
                ]),
                RtValue::Int(4),
            ],
            params: vec![RtValue::Int(2), RtValue::Int(3)],
            init_value: RtValue::Array(vec![RtValue::point(&[1.0]), RtValue::point(&[6.0])]),
        }
    }

    fn mcl_env() -> SimpleEnv {
        SimpleEnv {
            data: vec![
                RtValue::Array(vec![RtValue::point(&[0.0]), RtValue::point(&[1.0])]),
                RtValue::Int(2),
                RtValue::Array(vec![
                    RtValue::Array(vec![RtValue::Float(0.5), RtValue::Float(0.5)]),
                    RtValue::Array(vec![RtValue::Float(0.5), RtValue::Float(0.5)]),
                ]),
            ],
            params: vec![RtValue::Int(2), RtValue::Int(2)],
            init_value: RtValue::Undef,
        }
    }

    #[test]
    fn paper_programs_type_check() {
        let env = kmedoids_env();
        for src in [programs::K_MEDOIDS, programs::K_MEANS] {
            let p = parse(src).unwrap();
            check_program(&p, &env).unwrap();
        }
        let p = parse(programs::MCL).unwrap();
        check_program(&p, &mcl_env()).unwrap();
    }

    #[test]
    fn use_before_def_rejected() {
        let p = parse("x = y + 1\n").unwrap();
        assert!(matches!(
            check_program(&p, &SimpleEnv::default()),
            Err(LangError::Type(_))
        ));
    }

    #[test]
    fn non_integer_loop_bound_rejected() {
        let p = parse("for i in range(0, 1.5):\n    x = 1\n").unwrap();
        assert!(check_program(&p, &SimpleEnv::default()).is_err());
    }

    #[test]
    fn comparing_bool_with_int_rejected() {
        let p = parse("x = True <= 3\n").unwrap();
        assert!(check_program(&p, &SimpleEnv::default()).is_err());
    }

    #[test]
    fn break_ties_on_scalar_rejected() {
        let p = parse("x = 1\ny = breakTies2(x)\n").unwrap();
        assert!(check_program(&p, &SimpleEnv::default()).is_err());
    }

    #[test]
    fn reduce_and_over_ints_rejected() {
        let p = parse("x = reduce_and([1 for i in range(0,3)])\n").unwrap();
        assert!(check_program(&p, &SimpleEnv::default()).is_err());
    }

    #[test]
    fn indexing_scalar_rejected() {
        let p = parse("x = 1\ny = x[0]\n").unwrap();
        assert!(check_program(&p, &SimpleEnv::default()).is_err());
    }

    #[test]
    fn type_stable_loop_accepts() {
        let p = parse("x = 0\nfor i in range(0,3):\n    x = x + i\n").unwrap();
        check_program(&p, &SimpleEnv::default()).unwrap();
    }

    #[test]
    fn array_refinement_through_assignments() {
        let src = "\
M = [None] * 2
M[0] = True
M[1] = False
M = breakTies(M)
";
        let p = parse(src).unwrap();
        check_program(&p, &SimpleEnv::default()).unwrap();
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = parse("(a, b, c) = loadParams()\n").unwrap();
        let env = SimpleEnv {
            params: vec![RtValue::Int(1), RtValue::Int(2)],
            ..SimpleEnv::default()
        };
        assert!(check_program(&p, &env).is_err());
    }

    #[test]
    fn ty_join_rules() {
        assert_eq!(Ty::Int.join(&Ty::Float).unwrap(), Ty::Float);
        assert_eq!(Ty::Unknown.join(&Ty::Bool).unwrap(), Ty::Bool);
        assert!(Ty::Bool.join(&Ty::Point).is_err());
        assert_eq!(
            Ty::Array(Box::new(Ty::Int))
                .join(&Ty::Array(Box::new(Ty::Unknown)))
                .unwrap(),
            Ty::Array(Box::new(Ty::Int))
        );
    }
}
