//! # enframe-lang — the ENFrame user language
//!
//! ENFrame users write programs in a fragment of Python (paper §2, grammar
//! in Figure 4) featuring assignments, bounded-range `for` loops, list
//! comprehension, `reduce_*` aggregates, tie-breaking helpers, and the
//! abstract data primitives `loadData()` / `loadParams()` / `init()`.
//!
//! This crate provides the full front-end for that language:
//!
//! * [`lexer`] — an indentation-aware tokenizer (Python-style
//!   `INDENT`/`DEDENT`, `#` comments, implicit line joining inside
//!   brackets);
//! * [`parser`] — a recursive-descent parser producing the [`ast`];
//! * [`check`] — a type-and-shape checker that validates a program against
//!   concrete data bindings (array sizes are known at compile time because
//!   all loops are bounded);
//! * [`interp`] — a deterministic interpreter with the *undefined-aware*
//!   semantics of the event language (§3.2), so that running a program on
//!   one possible world agrees exactly with evaluating the translated event
//!   program under the corresponding valuation;
//! * [`programs`] — the three canonical user programs of the paper
//!   (k-means, k-medoids, Markov clustering), Figures 1–3.
//!
//! ```
//! use enframe_lang::{parse, programs};
//!
//! let ast = parse(programs::K_MEDOIDS).expect("the paper's program parses");
//! assert!(ast.stmts.len() >= 4);
//! ```

pub mod ast;
pub mod check;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod programs;
pub mod rtvalue;

pub use ast::{Expr, ListCompr, Lval, ReduceKind, Stmt, UserProgram};
pub use check::check_program;
pub use error::LangError;
pub use interp::{ExternalEnv, Interp, SimpleEnv};
pub use parser::parse;
pub use rtvalue::RtValue;
