//! Recursive-descent parser for the user language (grammar of Figure 4).

use crate::ast::*;
use crate::error::{LangError, Pos};
use crate::lexer::{lex, Spanned, Tok};

/// Parses a user program from source text.
pub fn parse(src: &str) -> Result<UserProgram, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmts = p.stmt_list(true)?;
    p.expect(&Tok::Eof)?;
    Ok(UserProgram { stmts })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), LangError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::parse(
                self.here(),
                format!("expected {want:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(LangError::parse(
                self.here(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// Parses statements until `Dedent`/`Eof` (or only `Eof` at top level).
    fn stmt_list(&mut self, top: bool) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Dedent if !top => break,
                Tok::Newline => {
                    self.bump();
                }
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            Tok::For => self.for_stmt(),
            Tok::LParen => self.tuple_assign(),
            Tok::Ident(_) => self.assign(),
            other => Err(LangError::parse(
                self.here(),
                format!("expected statement, found {other:?}"),
            )),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(&Tok::For)?;
        let var = self.expect_ident()?;
        self.expect(&Tok::In)?;
        let range_name = self.expect_ident()?;
        if range_name != "range" {
            return Err(LangError::parse(
                self.here(),
                format!("for loops must iterate over range(..), found `{range_name}`"),
            ));
        }
        self.expect(&Tok::LParen)?;
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        self.expect(&Tok::Newline)?;
        self.expect(&Tok::Indent)?;
        let body = self.stmt_list(false)?;
        self.expect(&Tok::Dedent)?;
        Ok(Stmt::For { var, lo, hi, body })
    }

    fn tuple_assign(&mut self) -> Result<Stmt, LangError> {
        self.expect(&Tok::LParen)?;
        let mut names = vec![self.expect_ident()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            names.push(self.expect_ident()?);
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Assign)?;
        let call = self.ext_call()?;
        self.expect(&Tok::Newline)?;
        Ok(Stmt::TupleAssign { names, call })
    }

    fn ext_call(&mut self) -> Result<ExtCall, LangError> {
        let name = self.expect_ident()?;
        let call = match name.as_str() {
            "loadData" => ExtCall::LoadData,
            "loadParams" => ExtCall::LoadParams,
            "init" => ExtCall::Init,
            other => {
                return Err(LangError::parse(
                    self.here(),
                    format!("expected external call, found `{other}`"),
                ))
            }
        };
        self.expect(&Tok::LParen)?;
        self.expect(&Tok::RParen)?;
        Ok(call)
    }

    fn assign(&mut self) -> Result<Stmt, LangError> {
        let target = self.lval()?;
        self.expect(&Tok::Assign)?;
        // `name = init()` / `name = loadData()` style single binding.
        if let Tok::Ident(name) = self.peek() {
            if matches!(name.as_str(), "loadData" | "loadParams" | "init")
                && self.peek2() == Some(&Tok::LParen)
            {
                if target.depth() != 0 {
                    return Err(LangError::parse(
                        self.here(),
                        "external calls can only be bound to plain names",
                    ));
                }
                let call = self.ext_call()?;
                self.expect(&Tok::Newline)?;
                return Ok(Stmt::ExtAssign {
                    name: target.base_name().to_owned(),
                    call,
                });
            }
        }
        let expr = self.expr()?;
        self.expect(&Tok::Newline)?;
        Ok(Stmt::Assign { target, expr })
    }

    fn lval(&mut self) -> Result<Lval, LangError> {
        let name = self.expect_ident()?;
        let mut lv = Lval::Name(name);
        while self.peek() == &Tok::LBracket {
            self.bump();
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            lv = Lval::Index(Box::new(lv), Box::new(idx));
        }
        Ok(lv)
    }

    /// expr := add [cmpop add]
    fn expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Le => Cmp::Le,
            Tok::Lt => Cmp::Lt,
            Tok::Ge => Cmp::Ge,
            Tok::Gt => Cmp::Gt,
            Tok::EqEq => Cmp::Eq,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Compare(op, Box::new(lhs), Box::new(rhs)))
    }

    /// add := mul { ('+'|'-') mul }
    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Tok::Minus => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// mul := unary { '*' unary }
    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.unary()?;
            // `[None] * e` array initialisation.
            if let Expr::ArrayInit(inner) = &lhs {
                if matches!(**inner, Expr::Int(0)) {
                    lhs = Expr::ArrayInit(Box::new(rhs));
                    continue;
                }
            }
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// unary := '-' unary | postfix
    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek() == &Tok::Minus {
            self.bump();
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Int(i) => Expr::Int(-i),
                Expr::Float(f) => Expr::Float(-f),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.postfix()
    }

    /// postfix := atom { '[' expr ']' }
    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.atom()?;
        while self.peek() == &Tok::LBracket {
            self.bump();
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Expr::Float(f))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                // `[None]` marker for array initialisation; the `* size`
                // part is applied by `mul_expr`.
                self.bump();
                if self.peek() == &Tok::NoneLit {
                    self.bump();
                    self.expect(&Tok::RBracket)?;
                    // Placeholder size 0; replaced in mul_expr.
                    Ok(Expr::ArrayInit(Box::new(Expr::Int(0))))
                } else {
                    Err(LangError::parse(
                        self.here(),
                        "list comprehensions are only allowed inside reduce_* calls",
                    ))
                }
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.call(name)
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(LangError::parse(
                self.here(),
                format!("expected expression, found {other:?}"),
            )),
        }
    }

    fn call(&mut self, name: String) -> Result<Expr, LangError> {
        self.expect(&Tok::LParen)?;
        if let Some(kind) = ReduceKind::from_name(&name) {
            let compr = self.list_compr()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Reduce(kind, compr));
        }
        let expr = match name.as_str() {
            "pow" => {
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                Expr::Pow(Box::new(a), Box::new(b))
            }
            "invert" => Expr::Invert(Box::new(self.expr()?)),
            "dist" => {
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                Expr::Dist(Box::new(a), Box::new(b))
            }
            "scalar_mult" => {
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                Expr::ScalarMult(Box::new(a), Box::new(b))
            }
            "breakTies" => Expr::BreakTies(TieKind::One, Box::new(self.expr()?)),
            "breakTies1" => Expr::BreakTies(TieKind::Dim1, Box::new(self.expr()?)),
            "breakTies2" => Expr::BreakTies(TieKind::Dim2, Box::new(self.expr()?)),
            "loadData" | "loadParams" | "init" => {
                return Err(LangError::parse(
                    self.here(),
                    format!(
                        "`{name}` can only appear as the sole right-hand side of an assignment"
                    ),
                ))
            }
            other => {
                return Err(LangError::parse(
                    self.here(),
                    format!("unknown function `{other}`"),
                ))
            }
        };
        self.expect(&Tok::RParen)?;
        Ok(expr)
    }

    /// list_compr := '[' expr 'for' ID 'in' 'range' '(' expr ',' expr ')'
    ///               ['if' expr] ']'
    fn list_compr(&mut self) -> Result<ListCompr, LangError> {
        self.expect(&Tok::LBracket)?;
        let expr = self.expr()?;
        self.expect(&Tok::For)?;
        let var = self.expect_ident()?;
        self.expect(&Tok::In)?;
        let range_name = self.expect_ident()?;
        if range_name != "range" {
            return Err(LangError::parse(
                self.here(),
                "list comprehensions must iterate over range(..)",
            ));
        }
        self.expect(&Tok::LParen)?;
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        self.expect(&Tok::RParen)?;
        let cond = if self.peek() == &Tok::If {
            self.bump();
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect(&Tok::RBracket)?;
        Ok(ListCompr {
            expr: Box::new(expr),
            var,
            lo: Box::new(lo),
            hi: Box::new(hi),
            cond,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_assignments() {
        let p = parse("V = 2\nW = V\n").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(
            matches!(&p.stmts[0], Stmt::Assign { target: Lval::Name(n), expr: Expr::Int(2) } if n == "V")
        );
    }

    #[test]
    fn parses_indexed_assignment() {
        let p = parse("M[2] = True\nM[i] = W\n").unwrap();
        match &p.stmts[0] {
            Stmt::Assign { target, expr } => {
                assert_eq!(target.base_name(), "M");
                assert_eq!(target.depth(), 1);
                assert_eq!(expr, &Expr::Bool(true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_array_init() {
        let p = parse("M = [None] * k\n").unwrap();
        match &p.stmts[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(expr, &Expr::ArrayInit(Box::new(Expr::Name("k".into()))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_tuple_assign() {
        let p = parse("(O, n) = loadData()\n(k, iter) = loadParams()\nM = init()\n").unwrap();
        assert_eq!(
            p.stmts[0],
            Stmt::TupleAssign {
                names: vec!["O".into(), "n".into()],
                call: ExtCall::LoadData
            }
        );
        assert_eq!(
            p.stmts[2],
            Stmt::ExtAssign {
                name: "M".into(),
                call: ExtCall::Init
            }
        );
    }

    #[test]
    fn parses_for_loop_with_body() {
        let src = "for i in range(0,k):\n    M[i] = 1\n";
        let p = parse(src).unwrap();
        match &p.stmts[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_reduce_with_comprehension() {
        let src = "x = reduce_sum([1 for i in range(0,n) if B[i]])\n";
        let p = parse(src).unwrap();
        match &p.stmts[0] {
            Stmt::Assign {
                expr: Expr::Reduce(ReduceKind::Sum, compr),
                ..
            } => {
                assert_eq!(compr.var, "i");
                assert!(compr.cond.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multiline_reduce() {
        let src =
            "x = reduce_and(\n    [(dist(O[l],M[i]) <= dist(O[l],M[j])) for j in range(0,k)])\n";
        let p = parse(src).unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Assign {
                expr: Expr::Reduce(ReduceKind::And, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_builtin_calls() {
        let src = "a = pow(N[i][j], r) * invert(b)\nc = scalar_mult(s, v)\nd = dist(x, y)\ne = breakTies2(InCl)\n";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 4);
        assert!(matches!(
            &p.stmts[3],
            Stmt::Assign {
                expr: Expr::BreakTies(TieKind::Dim2, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_comparison_precedence() {
        // a + b <= c * d  parses as (a+b) <= (c*d)
        let p = parse("x = a + b <= c * d\n").unwrap();
        match &p.stmts[0] {
            Stmt::Assign {
                expr: Expr::Compare(Cmp::Le, l, r),
                ..
            } => {
                assert!(matches!(**l, Expr::Add(_, _)));
                assert!(matches!(**r, Expr::Mul(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse("x = -3\ny = -2.5\n").unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Assign {
                expr: Expr::Int(-3),
                ..
            }
        ));
        assert!(matches!(&p.stmts[1], Stmt::Assign { expr: Expr::Float(f), .. } if *f == -2.5));
    }

    #[test]
    fn rejects_bare_list_comprehension() {
        assert!(parse("x = [1 for i in range(0,2)]\n").is_err());
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(parse("x = frobnicate(1)\n").is_err());
    }

    #[test]
    fn rejects_ext_call_in_expression() {
        assert!(parse("x = 1 + loadData()\n").is_err());
    }

    #[test]
    fn rejects_for_without_range() {
        assert!(parse("for i in items(0,2):\n    x = 1\n").is_err());
    }

    #[test]
    fn rejects_indexed_ext_binding() {
        assert!(parse("M[0] = init()\n").is_err());
    }

    #[test]
    fn parses_nested_loops() {
        let src = "\
for i in range(0,k):
    InCl[i] = [None] * n
    for l in range(0,n):
        InCl[i][l] = True
";
        let p = parse(src).unwrap();
        match &p.stmts[0] {
            Stmt::For { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[1], Stmt::For { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
