//! The three canonical user programs of the paper (Figures 1–3), verbatim
//! modulo whitespace. They parse with [`crate::parse`], interpret with
//! [`crate::Interp`], and translate to event programs with
//! `enframe-translate`.

/// K-medoids clustering (paper Figure 1, left).
pub const K_MEDOIDS: &str = "\
(O, n) = loadData()                # list and number of objects
(k, iter) = loadParams()           # number of clusters and iterations
M = init()                         # initialise medoids
for it in range(0,iter):           # clustering iterations
    InCl = [None] * k              # assignment phase
    for i in range(0,k):
        InCl[i] = [None] * n
        for l in range(0,n):
            InCl[i][l] = reduce_and(
                [(dist(O[l],M[i]) <= dist(O[l],M[j])) for j in range(0,k)])
    InCl = breakTies2(InCl)        # each object is in exactly one cluster
    DistSum = [None] * k           # update phase
    for i in range(0,k):
        DistSum[i] = [None] * n
        for l in range(0,n):
            DistSum[i][l] = reduce_sum(
                [dist(O[l],O[p]) for p in range(0,n) if InCl[i][p]])
    Centre = [None] * k
    for i in range(0,k):
        Centre[i] = [None] * n
        for l in range(0,n):
            Centre[i][l] = reduce_and(
                [DistSum[i][l] <= DistSum[i][p] for p in range(0,n)])
    Centre = breakTies1(Centre)    # enforce one Centre per cluster
    M = [None] * k
    for i in range(0,k):
        M[i] = reduce_sum([O[l] for l in range(0,n) if Centre[i][l]])
";

/// K-means clustering (paper Figure 2, left).
pub const K_MEANS: &str = "\
(O, n) = loadData()                # list and number of objects
(k, iter) = loadParams()           # number of clusters and iterations
M = init()                         # initialise centroids
for it in range(0,iter):           # clustering iterations
    InCl = [None] * k              # assignment phase
    for i in range(0,k):
        InCl[i] = [None] * n
        for l in range(0,n):
            InCl[i][l] = reduce_and(
                [dist(O[l],M[i]) <= dist(O[l],M[j]) for j in range(0,k)])
    InCl = breakTies2(InCl)        # each object is in exactly one cluster
    M = [None] * k                 # update phase
    for i in range(0,k):
        M[i] = scalar_mult(invert(
            reduce_count([1 for l in range(0,n) if InCl[i][l]])),
            reduce_sum([O[l] for l in range(0,n) if InCl[i][l]]))
";

/// Markov clustering (paper Figure 3, left).
pub const MCL: &str = "\
(O, n, M) = loadData()             # M is a stochastic n*n matrix of
                                   # edge weights, O is list of nodes
(r, iter) = loadParams()           # Hadamard power, number of iterations
for it in range(0,iter):
    N = [None] * n                 # expansion phase
    for i in range(0,n):
        N[i] = [None] * n
        for j in range(0,n):
            N[i][j] = reduce_sum([M[i][k]*M[k][j] for k in range(0,n)])
    M = [None] * n                 # inflation phase
    for i in range(0,n):
        M[i] = [None] * n
        for j in range(0,n):
            M[i][j] = pow(N[i][j],r)*invert(
                reduce_sum([pow(N[i][k],r) for k in range(0,n)]))
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn all_three_programs_parse() {
        for (name, src) in [("kmedoids", K_MEDOIDS), ("kmeans", K_MEANS), ("mcl", MCL)] {
            let p = parse(src);
            assert!(p.is_ok(), "{name} failed to parse: {:?}", p.err());
        }
    }

    #[test]
    fn kmedoids_has_expected_structure() {
        let p = parse(K_MEDOIDS).unwrap();
        // loadData, loadParams, init, main loop.
        assert_eq!(p.stmts.len(), 4);
        match &p.stmts[3] {
            crate::ast::Stmt::For { var, body, .. } => {
                assert_eq!(var, "it");
                // InCl init, loop, breakTies2, DistSum init, loop, Centre
                // init, loop, breakTies1, M init, loop.
                assert_eq!(body.len(), 10);
            }
            other => panic!("expected main loop, got {other:?}"),
        }
    }

    #[test]
    fn mcl_has_expected_structure() {
        let p = parse(MCL).unwrap();
        assert_eq!(p.stmts.len(), 3);
    }
}
